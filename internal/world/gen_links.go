package world

import (
	"sort"

	"facilitymap/internal/netaddr"
)

// ixpAllocators hands out member addresses from each IXP's peering LAN.
func (b *builder) ixpAlloc(ix *IXP) *netaddr.Allocator {
	if b.ixpAllocs == nil {
		b.ixpAllocs = make(map[IXPID]*netaddr.Allocator)
	}
	a, ok := b.ixpAllocs[ix.ID]
	if !ok {
		a = netaddr.NewAllocator(ix.Prefix)
		a.AllocIP() // skip the network address
		b.ixpAllocs[ix.ID] = a
	}
	return a
}

// addMembership connects an AS to an IXP, deciding between a local port
// (in a common or newly-joined facility) and a remote port via reseller.
func (b *builder) addMembership(as *AS, ix *IXP) *Membership {
	mk := memberKey{as.ASN, ix.ID}
	if b.memberDone[mk] {
		return nil
	}
	b.memberDone[mk] = true
	b.ixpsOfAS[as.ASN] = append(b.ixpsOfAS[as.ASN], ix.ID)

	inIXP := make(map[FacilityID]bool, len(ix.Facilities))
	for _, f := range ix.Facilities {
		inIXP[f] = true
	}
	var common []FacilityID
	for _, f := range as.Facilities {
		if inIXP[f] {
			common = append(common, f)
		}
	}

	var rtr RouterID = None
	var fac FacilityID = None
	remote := false
	var reseller ASN
	switch {
	case len(common) > 0:
		// Prefer a facility where the AS already runs a router with an
		// IXP port — that yields the multi-IXP routers the paper
		// observes (11.9% of public-peering routers, §5) — and failing
		// that, the cross-IXP building, so future joins coincide.
		fac = common[0]
		bestHosted := -1
		for _, f := range common {
			id, ok := b.routerAt[routerKey{as.ASN, f, b.w.Facilities[f].Metro}]
			if ok && b.hasIXPPort(id) {
				fac = f
				bestHosted = 1 << 20
				continue
			}
			n := b.ixpsHostedAt(f)
			if n > bestHosted {
				fac, bestHosted = f, n
			}
		}
		rtr = b.addRouter(as, fac, b.w.Facilities[fac].Metro, b.asIPID(as))
	case b.rng.Float64() < b.cfg.RemotePeerFrac && len(as.Routers) > 0 && len(ix.Resellers) > 0:
		// Remote peering: reuse an existing router anywhere.
		remote = true
		rtr = as.Routers[0]
		reseller = ix.Resellers[b.rng.Intn(len(ix.Resellers))]
	default:
		// Deploy into one of the IXP's partner facilities, preferring
		// cross-IXP buildings: a router there can later peer over every
		// colocated exchange with one chassis (the multi-IXP routers of
		// §5, 11.9%).
		fac = b.preferCrossIXPFacility(ix)
		b.joinFacility(as, fac)
		rtr = b.addRouter(as, fac, b.w.Facilities[fac].Metro, b.asIPID(as))
	}

	ip, err := b.ixpAlloc(ix).AllocIP()
	if err != nil {
		panic("world: IXP LAN exhausted for " + ix.Name)
	}
	var sw SwitchID
	if remote {
		// The reseller terminates the transport on one of its ports; the
		// member lands on whatever access switch the reseller uses.
		accs := b.accessSwitches(ix)
		sw = accs[b.rng.Intn(len(accs))]
	} else {
		sw = b.accessSwitchAt(ix, fac)
		if sw == None {
			accs := b.accessSwitches(ix)
			sw = accs[b.rng.Intn(len(accs))]
		}
	}
	port := b.addInterface(b.w.Routers[rtr], IXPPort, ip, ix.ID, sw, None)
	m := &Membership{
		ID:           MembershipID(len(b.w.Memberships)),
		AS:           as.ASN,
		IXP:          ix.ID,
		Router:       rtr,
		Port:         port,
		AccessSwitch: sw,
		Remote:       remote,
		Reseller:     reseller,
	}
	b.w.Memberships = append(b.w.Memberships, m)
	b.memberRouter[mk] = rtr
	// Redundant second port: some local members connect a second router
	// at another facility of the same exchange (the AMS-IX dual-homing
	// the §4.4 experiment relies on). Traffic from a peer lands on the
	// fabric-proximate port.
	if !remote && len(ix.Facilities) >= 2 && b.rng.Float64() < 0.20 {
		b.addSecondPort(as, ix, fac)
	}
	return m
}

// addSecondPort joins the member at one more facility of the exchange.
func (b *builder) addSecondPort(as *AS, ix *IXP, first FacilityID) {
	var others []FacilityID
	for _, f := range ix.Facilities {
		if f != first {
			others = append(others, f)
		}
	}
	if len(others) == 0 {
		return
	}
	fac := others[b.rng.Intn(len(others))]
	b.joinFacility(as, fac)
	rtr := b.addRouter(as, fac, b.w.Facilities[fac].Metro, b.asIPID(as))
	// A router may hold only one port per IXP.
	for _, i := range b.w.Routers[rtr].Interfaces {
		ifc := b.w.Interfaces[i]
		if ifc.Kind == IXPPort && ifc.IXP == ix.ID {
			return
		}
	}
	ip, err := b.ixpAlloc(ix).AllocIP()
	if err != nil {
		panic("world: IXP LAN exhausted for " + ix.Name)
	}
	sw := b.accessSwitchAt(ix, fac)
	if sw == None {
		return
	}
	port := b.addInterface(b.w.Routers[rtr], IXPPort, ip, ix.ID, sw, None)
	b.w.Memberships = append(b.w.Memberships, &Membership{
		ID:           MembershipID(len(b.w.Memberships)),
		AS:           as.ASN,
		IXP:          ix.ID,
		Router:       rtr,
		Port:         port,
		AccessSwitch: sw,
	})
	// The tether pass picks the AS's latest port on the exchange; the
	// second port is now it.
	b.memberRouter[memberKey{as.ASN, ix.ID}] = rtr
}

// ixpsHostedAt counts active exchanges with an access switch at f.
func (b *builder) ixpsHostedAt(f FacilityID) int {
	n := 0
	for _, ix := range b.w.IXPs {
		if ix.Inactive {
			continue
		}
		for _, g := range ix.Facilities {
			if g == f {
				n++
				break
			}
		}
	}
	return n
}

// preferCrossIXPFacility picks the partner facility hosting the most
// other exchanges (ties broken randomly among the best).
func (b *builder) preferCrossIXPFacility(ix *IXP) FacilityID {
	hosts := make(map[FacilityID]int)
	for _, other := range b.w.IXPs {
		if other.Inactive || other.ID == ix.ID {
			continue
		}
		for _, f := range other.Facilities {
			hosts[f]++
		}
	}
	best := -1
	var top []FacilityID
	for _, f := range ix.Facilities {
		n := hosts[f]
		switch {
		case n > best:
			best = n
			top = []FacilityID{f}
		case n == best:
			top = append(top, f)
		}
	}
	return top[b.rng.Intn(len(top))]
}

func (b *builder) accessSwitches(ix *IXP) []SwitchID {
	var out []SwitchID
	for _, sid := range ix.Switches {
		if b.w.Switches[sid].Role == AccessSwitch {
			out = append(out, sid)
		}
	}
	return out
}

func (b *builder) hasIXPPort(r RouterID) bool {
	for _, i := range b.w.Routers[r].Interfaces {
		if b.w.Interfaces[i].Kind == IXPPort {
			return true
		}
	}
	return false
}

// asIPID returns the IP-ID behaviour for new routers of an AS, keeping it
// consistent with the AS's existing routers.
func (b *builder) asIPID(as *AS) IPIDBehavior {
	if len(as.Routers) > 0 {
		return b.w.Routers[as.Routers[0]].IPID
	}
	return b.randIPID()
}

func (b *builder) genMemberships() {
	active := b.w.ActiveIXPs()
	if len(active) == 0 {
		return
	}
	// Rank IXPs by facility spread (proxy for size).
	bigFirst := append([]*IXP(nil), active...)
	sort.Slice(bigFirst, func(i, j int) bool {
		if len(bigFirst[i].Facilities) != len(bigFirst[j].Facilities) {
			return len(bigFirst[i].Facilities) > len(bigFirst[j].Facilities)
		}
		return bigFirst[i].ID < bigFirst[j].ID
	})
	byMetroIXPs := make(map[int][]*IXP)
	for _, ix := range active {
		byMetroIXPs[int(ix.Metro)] = append(byMetroIXPs[int(ix.Metro)], ix)
	}

	for _, as := range b.w.ASes {
		switch as.Type {
		case Content:
			k := 12 + b.rng.Intn(10)
			if k > len(bigFirst) {
				k = len(bigFirst)
			}
			for i := 0; i < k; i++ {
				b.addMembership(as, bigFirst[i])
			}
		case Tier1:
			k := 1 + b.rng.Intn(3)
			top := len(bigFirst)
			if top > 12 {
				top = 12
			}
			for i := 0; i < k; i++ {
				b.addMembership(as, bigFirst[b.rng.Intn(top)])
			}
		case Transit:
			var regional []*IXP
			for _, ix := range active {
				if b.w.Metros[ix.Metro].Region == as.Region {
					regional = append(regional, ix)
				}
			}
			if len(regional) == 0 {
				regional = active
			}
			k := 2 + b.rng.Intn(4)
			for i := 0; i < k; i++ {
				b.addMembership(as, regional[b.rng.Intn(len(regional))])
			}
		case Access:
			home := b.w.Routers[as.Routers[0]].Metro
			local := byMetroIXPs[int(home)]
			k := 1 + b.rng.Intn(3)
			for i := 0; i < k; i++ {
				if i < len(local) {
					b.addMembership(as, local[i])
					continue
				}
				// No local exchange left: join a big one elsewhere
				// (candidate for remote peering).
				b.addMembership(as, bigFirst[b.rng.Intn(len(bigFirst))])
			}
		case Enterprise:
			// Stubs do not peer publicly.
		}
	}
}

// pairProb is the probability that two co-located IXP members establish a
// bilateral session, by AS-type pair.
func pairProb(a, b ASType) float64 {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == Content && b == Access:
		return 0.85
	case a == Content && b == Transit:
		return 0.60
	case a == Content && b == Content:
		return 0.40
	case a == Tier1 && b == Content:
		return 0.10
	case a == Transit && b == Access:
		return 0.50
	case a == Transit && b == Transit:
		return 0.35
	case a == Access && b == Access:
		return 0.25
	case a == Tier1:
		return 0.06
	default:
		return 0.2
	}
}

func (b *builder) genPublicPeering() {
	// One pass over the membership table, preserving first-appearance
	// order per exchange (the order the per-IXP scan used to produce).
	byIXPMembers := make([][]*Membership, len(b.w.IXPs))
	for _, m := range b.w.Memberships {
		byIXPMembers[m.IXP] = append(byIXPMembers[m.IXP], m)
	}
	for _, ix := range b.w.IXPs {
		if ix.Inactive {
			continue
		}
		// Group ports by member: a dual-homed member brings every port
		// into the session, so redundant links exist and traffic picks
		// the fabric-proximate one.
		byAS := make(map[ASN][]*Membership)
		var order []ASN
		for _, m := range byIXPMembers[ix.ID] {
			if _, seen := byAS[m.AS]; !seen {
				order = append(order, m.AS)
			}
			byAS[m.AS] = append(byAS[m.AS], m)
		}
		// Mega-exchanges (only the internet-scale profile grows any)
		// consider bilateral sessions within a bounded member window
		// instead of the full quadratic cross-product; below the gate
		// the window spans every pair, preserving historical worlds
		// draw-for-draw.
		window := len(order)
		if window > 128 {
			window = 64
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order) && j <= i+window; j++ {
				asA, asB := b.w.byASNOrNil(order[i]), b.w.byASNOrNil(order[j])
				multilateral := false
				establish := false
				if ix.RouteServer && asA.OpenPeering && asB.OpenPeering {
					if b.rng.Float64() < 0.9 {
						establish, multilateral = true, true
					}
				} else if b.rng.Float64() < pairProb(asA.Type, asB.Type) {
					establish = true
				}
				if !establish {
					continue
				}
				for _, ma := range byAS[order[i]] {
					for _, mb := range byAS[order[j]] {
						b.addLink(&Link{
							Kind:         PublicPeering,
							Rel:          PeerToPeer,
							A:            ma.Router,
							B:            mb.Router,
							AIface:       ma.Port,
							BIface:       mb.Port,
							IXP:          ix.ID,
							Multilateral: multilateral,
						})
					}
				}
				b.setPeers(order[i], order[j])
			}
		}
	}
}

// byASNOrNil is a pre-index lookup (buildIndexes runs only at the end).
func (w *World) byASNOrNil(n ASN) *AS {
	if w.byASN != nil {
		return w.byASN[n]
	}
	for _, as := range w.ASes {
		if as.ASN == n {
			return as
		}
	}
	return nil
}

func (b *builder) addLink(l *Link) *Link {
	a, z := l.A, l.B
	if a > z {
		a, z = z, a
	}
	key := linkKey{a, z, l.Kind}
	if b.linkSeen[key] {
		return nil
	}
	b.linkSeen[key] = true
	l.ID = LinkID(len(b.w.Links))
	b.w.Links = append(b.w.Links, l)
	// Back-fill the Link reference on private-side interfaces.
	if l.Kind != PublicPeering {
		b.w.Interfaces[l.AIface].Link = l.ID
		b.w.Interfaces[l.BIface].Link = l.ID
	}
	return l
}

func (b *builder) setPeers(x, y ASN) {
	if b.providersM[x][y] || b.providersM[y][x] {
		return // transit relationship dominates
	}
	b.peersM[x][y] = true
	b.peersM[y][x] = true
}

func (b *builder) setProvider(cust, prov ASN) {
	delete(b.peersM[cust], prov)
	delete(b.peersM[prov], cust)
	b.providersM[cust][prov] = true
}

// privateInterconnect links two ASes privately. For c2p, a is the
// customer. Returns true if at least one link was created.
func (b *builder) privateInterconnect(a, z *AS, rel Relationship, maxMetros int) bool {
	made := 0
	usedMetro := make(map[int]bool)
	// Exact common facilities first.
	for _, f := range b.commonFacilities(a, z) {
		metro := int(b.w.Facilities[f].Metro)
		if usedMetro[metro] || made >= maxMetros {
			continue
		}
		usedMetro[metro] = true
		b.crossConnect(a, z, rel, f, f)
		made++
	}
	if made > 0 {
		return true
	}
	// Sister-facility cross-connects: same operator group, same metro.
	for _, fa := range a.Facilities {
		if made >= maxMetros {
			break
		}
		for _, fz := range z.Facilities {
			if fa != fz && b.w.SameSisterGroup(fa, fz) && !usedMetro[int(b.w.Facilities[fa].Metro)] {
				usedMetro[int(b.w.Facilities[fa].Metro)] = true
				b.crossConnect(a, z, rel, fa, fz)
				made++
				break
			}
		}
	}
	if made > 0 {
		return true
	}
	// Tethering across a shared IXP.
	if ix := b.sharedIXP(a, z); ix != nil && b.rng.Float64() < b.cfg.TetheringFrac {
		b.tether(a, z, rel, ix)
		return true
	}
	// Long-haul private interconnect as last resort.
	if len(a.Routers) == 0 || len(z.Routers) == 0 {
		return false
	}
	ra := a.Routers[b.rng.Intn(len(a.Routers))]
	rz := z.Routers[b.rng.Intn(len(z.Routers))]
	b.privateLink(a, z, rel, ra, rz, LongHaulPrivate, None)
	return true
}

func (b *builder) commonFacilities(a, z *AS) []FacilityID {
	set := make(map[FacilityID]bool, len(a.Facilities))
	for _, f := range a.Facilities {
		set[f] = true
	}
	var out []FacilityID
	for _, f := range z.Facilities {
		if set[f] {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (b *builder) sharedIXP(a, z *AS) *IXP {
	mine := make(map[IXPID]bool, len(b.ixpsOfAS[a.ASN]))
	for _, ix := range b.ixpsOfAS[a.ASN] {
		mine[ix] = true
	}
	// Deterministic choice: the lowest-numbered shared exchange.
	best := IXPID(None)
	for _, ix := range b.ixpsOfAS[z.ASN] {
		if mine[ix] && (best == IXPID(None) || ix < best) {
			best = ix
		}
	}
	if best == IXPID(None) {
		return nil
	}
	return b.w.IXPs[best]
}

func (b *builder) crossConnect(a, z *AS, rel Relationship, fa, fz FacilityID) {
	ra := b.addRouter(a, fa, b.w.Facilities[fa].Metro, b.asIPID(a))
	rz := b.addRouter(z, fz, b.w.Facilities[fz].Metro, b.asIPID(z))
	b.privateLink(a, z, rel, ra, rz, CrossConnect, None)
}

func (b *builder) tether(a, z *AS, rel Relationship, ix *IXP) {
	// The VLAN terminates on the routers holding the IXP ports (the
	// latest port each side holds on the exchange).
	ra, okA := b.memberRouter[memberKey{a.ASN, ix.ID}]
	rz, okZ := b.memberRouter[memberKey{z.ASN, ix.ID}]
	if !okA || !okZ {
		return
	}
	b.privateLink(a, z, rel, ra, rz, Tethering, ix.ID)
}

// privateLink creates a /30-numbered private link of the given kind.
// Following operational practice, the provider numbers c2p links and the
// larger network numbers peer links — which means the *other* side's
// interface is misattributed by longest-prefix IP-to-ASN mapping, the
// systematic error alias resolution must repair (§4.1).
func (b *builder) privateLink(a, z *AS, rel Relationship, ra, rz RouterID, kind LinkKind, ix IXPID) {
	owner := a
	switch {
	case rel == CustomerToProvider:
		owner = z
	case typeRank(z.Type) > typeRank(a.Type):
		owner = z
	case typeRank(z.Type) == typeRank(a.Type) && b.rng.Float64() < 0.5:
		owner = z
	}
	ipA, ipZ := b.allocP2P(owner.ASN)
	ifa := b.addInterface(b.w.Routers[ra], PrivateSide, ipA, ix, None, None)
	ifz := b.addInterface(b.w.Routers[rz], PrivateSide, ipZ, ix, None, None)
	l := b.addLink(&Link{
		Kind:   kind,
		Rel:    rel,
		A:      ra,
		B:      rz,
		AIface: ifa,
		BIface: ifz,
		IXP:    ix,
	})
	if l == nil {
		return
	}
	if rel == CustomerToProvider {
		b.setProvider(a.ASN, z.ASN)
	} else {
		b.setPeers(a.ASN, z.ASN)
	}
}

// typeRank orders AS types by how likely they are to number a shared
// point-to-point subnet (bigger networks run the numbering).
func typeRank(t ASType) int {
	switch t {
	case Tier1:
		return 4
	case Transit:
		return 3
	case Content:
		return 2
	case Access:
		return 1
	default:
		return 0
	}
}

func (b *builder) genPrivateLinks() {
	byType := make(map[ASType][]*AS)
	for _, as := range b.w.ASes {
		byType[as.Type] = append(byType[as.Type], as)
	}
	tier1s := byType[Tier1]
	transits := byType[Transit]

	// Tier-1 full mesh of settlement-free peers, interconnected privately
	// in up to three metros.
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			b.privateInterconnect(tier1s[i], tier1s[j], PeerToPeer, 3)
		}
	}
	// Transit providers buy from 2-3 Tier-1s.
	for _, t := range transits {
		perm := b.rng.Perm(len(tier1s))
		n := 2 + b.rng.Intn(2)
		for i := 0; i < n && i < len(perm); i++ {
			b.privateInterconnect(t, tier1s[perm[i]], CustomerToProvider, 2)
		}
	}
	// Same-region transit providers sometimes peer privately.
	for i := 0; i < len(transits); i++ {
		for j := i + 1; j < len(transits); j++ {
			if transits[i].Region == transits[j].Region && b.rng.Float64() < 0.25 {
				if len(b.commonFacilities(transits[i], transits[j])) > 0 {
					b.privateInterconnect(transits[i], transits[j], PeerToPeer, 1)
				}
			}
		}
	}
	// Content networks buy transit from 1-2 Tier-1s and cross-connect
	// with large eyeballs where co-located.
	for _, c := range byType[Content] {
		perm := b.rng.Perm(len(tier1s))
		n := 1 + b.rng.Intn(2)
		for i := 0; i < n && i < len(perm); i++ {
			b.privateInterconnect(c, tier1s[perm[i]], CustomerToProvider, 2)
		}
		for _, e := range byType[Access] {
			// CDNs prefer the public fabric; PNIs are reserved for the
			// largest eyeballs (§5: content traffic is public-heavy).
			if len(b.commonFacilities(c, e)) > 0 && b.rng.Float64() < 0.15 {
				b.privateInterconnect(c, e, PeerToPeer, 1)
			}
		}
	}
	// Access networks buy from 1-3 transit providers (same region
	// preferred), occasionally directly from a Tier-1.
	for _, e := range byType[Access] {
		var regional []*AS
		for _, t := range transits {
			if t.Region == e.Region {
				regional = append(regional, t)
			}
		}
		if len(regional) == 0 {
			regional = transits
		}
		n := 1 + b.rng.Intn(3)
		perm := b.rng.Perm(len(regional))
		for i := 0; i < n && i < len(perm); i++ {
			b.privateInterconnect(e, regional[perm[i]], CustomerToProvider, 1)
		}
		if len(tier1s) > 0 && b.rng.Float64() < 0.25 {
			b.privateInterconnect(e, tier1s[b.rng.Intn(len(tier1s))], CustomerToProvider, 1)
		}
	}
	// Tethering: members of a common IXP with no common facility turn an
	// existing or would-be peering into a private VLAN over the fabric
	// (§2, "Private Interconnects over IXP").
	for _, c := range append(append([]*AS(nil), byType[Content]...), transits...) {
		for _, e := range byType[Access] {
			if b.rng.Float64() >= b.cfg.TetheringFrac {
				continue
			}
			if len(b.commonFacilities(c, e)) > 0 {
				continue
			}
			if ix := b.sharedIXP(c, e); ix != nil {
				b.tether(c, e, PeerToPeer, ix)
			}
		}
	}
	// Enterprise stubs hang off one access or transit provider via a
	// long-haul private link (no facility presence at all).
	candidates := append(append([]*AS(nil), byType[Access]...), transits...)
	for _, s := range byType[Enterprise] {
		if len(candidates) == 0 {
			break
		}
		// Prefer a provider in the same region.
		var sameRegion []*AS
		for _, c := range candidates {
			if c.Region == s.Region {
				sameRegion = append(sameRegion, c)
			}
		}
		pool := sameRegion
		if len(pool) == 0 {
			pool = candidates
		}
		p := pool[b.rng.Intn(len(pool))]
		ra := s.Routers[0]
		rz := p.Routers[b.rng.Intn(len(p.Routers))]
		b.privateLink(s, p, CustomerToProvider, ra, rz, LongHaulPrivate, None)
	}
}

func (b *builder) finishRelationships() {
	// Invert providersM once instead of scanning every other AS per AS;
	// the final per-AS sort makes the map iteration order irrelevant.
	custOf := make(map[ASN][]ASN)
	for _, as := range b.w.ASes {
		for p := range b.providersM[as.ASN] {
			custOf[p] = append(custOf[p], as.ASN)
		}
	}
	for _, as := range b.w.ASes {
		var providers, peers []ASN
		for p := range b.providersM[as.ASN] {
			providers = append(providers, p)
		}
		customers := custOf[as.ASN]
		for p := range b.peersM[as.ASN] {
			peers = append(peers, p)
		}
		sortASNs(providers)
		sortASNs(customers)
		sortASNs(peers)
		as.Providers, as.Customers, as.Peers = providers, customers, peers
	}
}

// genColoMesh wires the facility-internal cross-connect tier: every AS
// resident in a facility privately interconnects with up to
// ColoMeshDegree of its ASN-order neighbours in the same building. This
// models the dense intra-building cross-connect market of large carrier
// hotels and is the interface mass behind the Large profile. Gated off
// (zero links, zero RNG draws) when the knob is zero, so profiles
// predating it generate byte-identical worlds.
func (b *builder) genColoMesh() {
	deg := b.cfg.ColoMeshDegree
	if deg <= 0 {
		return
	}
	residents := make([][]*AS, len(b.w.Facilities))
	for _, as := range b.w.ASes { // ASN-ascending: ASes is sorted
		for _, f := range as.Facilities {
			if _, ok := b.routerAt[routerKey{as.ASN, f, b.w.Facilities[f].Metro}]; ok {
				residents[f] = append(residents[f], as)
			}
		}
	}
	// Networks resident in many buildings cap their total cross-connect
	// count, which also bounds the /30 draw on any one AS's block.
	meshCap := 3 * deg
	meshCount := make(map[ASN]int)
	for fid, res := range residents {
		f := FacilityID(fid)
		metro := b.w.Facilities[f].Metro
		for i := 0; i < len(res); i++ {
			for k := 1; k <= deg && i+k < len(res); k++ {
				a, z := res[i], res[i+k]
				if meshCount[a.ASN] >= meshCap || meshCount[z.ASN] >= meshCap {
					continue
				}
				ra := b.routerAt[routerKey{a.ASN, f, metro}]
				rz := b.routerAt[routerKey{z.ASN, f, metro}]
				lo, hi := ra, rz
				if lo > hi {
					lo, hi = hi, lo
				}
				if b.linkSeen[linkKey{lo, hi, CrossConnect}] {
					continue
				}
				rel := PeerToPeer
				switch {
				case b.providersM[a.ASN][z.ASN]:
					rel = CustomerToProvider
				case b.providersM[z.ASN][a.ASN]:
					a, z, ra, rz = z, a, rz, ra
					rel = CustomerToProvider
				}
				b.privateLink(a, z, rel, ra, rz, CrossConnect, None)
				meshCount[a.ASN]++
				meshCount[z.ASN]++
			}
		}
	}
}

func sortASNs(s []ASN) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
