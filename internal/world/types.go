// Package world models the ground-truth synthetic Internet that every
// other subsystem observes through noisy interfaces: metros, colocation
// facilities, IXPs and their switch fabrics, ASes, routers, interfaces,
// IXP memberships and interconnection links.
//
// The world is the *answer key*. The measurement substrates (registry,
// traceroute, alias probing, BGP, DNS) each expose a partial, noisy view
// of it; the CFS algorithm in internal/cfs consumes only those views, and
// internal/validation scores CFS output against the withheld truth.
package world

import (
	"fmt"

	"facilitymap/internal/geo"
	"facilitymap/internal/netaddr"
)

// ASN is an autonomous system number.
type ASN uint32

func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Identifiers for world entities. All are dense indices into the World's
// slices, which keeps cross-references trivially serialisable.
type (
	FacilityID   int
	IXPID        int
	SwitchID     int
	RouterID     int
	InterfaceID  int
	LinkID       int
	MembershipID int
)

// None marks an absent optional reference for any of the ID types.
const None = -1

// ASType classifies networks the way the paper's evaluation does: content
// providers (Google, Akamai, ...), large transit providers (NTT, Cogent,
// ...), regional transit, access/eyeball networks and enterprise stubs.
type ASType int

const (
	Tier1 ASType = iota
	Transit
	Content
	Access
	Enterprise
)

func (t ASType) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	case Content:
		return "content"
	case Access:
		return "access"
	case Enterprise:
		return "enterprise"
	default:
		return fmt.Sprintf("ASType(%d)", int(t))
	}
}

// DNSStyle is the hostname convention an operator uses for router
// interface reverse DNS (see internal/dnsnames). Conventions vary per
// operator exactly as §6/§7 of the paper describe: some encode facilities,
// some airports, some nothing, some lie (stale records).
type DNSStyle int

const (
	DNSNone     DNSStyle = iota // no PTR records at all (e.g. Google)
	DNSAirport                  // IATA-style metro codes in hostnames
	DNSCLLI                     // CLLI-style codes
	DNSFacility                 // explicit facility short codes ("thn.lon")
	DNSStale                    // has records but a fraction are outdated
)

func (s DNSStyle) String() string {
	switch s {
	case DNSNone:
		return "none"
	case DNSAirport:
		return "airport"
	case DNSCLLI:
		return "clli"
	case DNSFacility:
		return "facility"
	case DNSStale:
		return "stale"
	default:
		return fmt.Sprintf("DNSStyle(%d)", int(s))
	}
}

// IPIDBehavior controls how a router answers alias-resolution probes
// (internal/alias). MIDAR-style inference needs a shared monotonic
// counter; routers that randomise, zero, or drop probes defeat it,
// producing the false negatives the paper reports (§4.1).
type IPIDBehavior int

const (
	IPIDSharedCounter IPIDBehavior = iota // one monotonic counter per router
	IPIDRandom                            // random per reply
	IPIDConstant                          // always zero
	IPIDUnresponsive                      // no replies to alias probes
)

func (b IPIDBehavior) String() string {
	switch b {
	case IPIDSharedCounter:
		return "shared-counter"
	case IPIDRandom:
		return "random"
	case IPIDConstant:
		return "constant"
	case IPIDUnresponsive:
		return "unresponsive"
	default:
		return fmt.Sprintf("IPIDBehavior(%d)", int(b))
	}
}

// Facility is an interconnection (colocation) facility: a building that
// leases space, power and cross-connects to networks (§2).
type Facility struct {
	ID       FacilityID
	Name     string
	Operator string
	Metro    geo.MetroID
	Coord    geo.Coord
	// CityName is the name the facility's street address uses; for some
	// facilities this is a suburb of the metro ("Jersey City"), which is
	// the naming discrepancy the registry normaliser must repair.
	CityName string
	// CarrierNeutral facilities admit any network; carrier-operated ones
	// mostly host the carrier and its customers.
	CarrierNeutral bool
	// SisterGroup joins facilities of the same operator in the same metro
	// that are interconnected, so cross-connects can span them. Zero
	// means no group.
	SisterGroup int
}

// SwitchRole is a switch's position in an IXP fabric (Figure 6).
type SwitchRole int

const (
	CoreSwitch SwitchRole = iota
	BackhaulSwitch
	AccessSwitch
)

func (r SwitchRole) String() string {
	switch r {
	case CoreSwitch:
		return "core"
	case BackhaulSwitch:
		return "backhaul"
	case AccessSwitch:
		return "access"
	default:
		return fmt.Sprintf("SwitchRole(%d)", int(r))
	}
}

// Switch is one element of an IXP's layer-2 fabric. Access switches sit in
// partner facilities; they uplink to a backhaul switch or directly to the
// core. Members on the same access or backhaul switch exchange traffic
// locally (the fact behind the switch-proximity heuristic, §4.4).
type Switch struct {
	ID       SwitchID
	IXP      IXPID
	Role     SwitchRole
	Facility FacilityID // facility hosting the switch
	Parent   SwitchID   // uplink switch; None for the core
}

// IXP is an Internet exchange point: a peering LAN spanning one or more
// facilities, optionally with a route server for multilateral peering.
type IXP struct {
	ID          IXPID
	Name        string
	Operator    string
	Metro       geo.MetroID // primary metro
	Prefix      netaddr.Prefix
	Facilities  []FacilityID // facilities with an access switch
	Switches    []SwitchID
	Core        SwitchID
	RouteServer bool
	// Resellers are transport ASes providing remote-peering ports (§2).
	Resellers []ASN
	// Inactive IXPs linger in stale registry sources and must be
	// filtered by the multi-source confirmation rule (§3.1.2).
	Inactive bool
}

// AS is an autonomous system.
type AS struct {
	ASN      ASN
	Name     string
	Type     ASType
	Region   geo.Region
	Prefixes []netaddr.Prefix
	// Facilities where the AS has presence (racks + at least one router).
	Facilities []FacilityID
	Routers    []RouterID
	// Relationships (Gao-Rexford roles) by neighbor ASN.
	Providers []ASN
	Customers []ASN
	Peers     []ASN

	DNSStyle DNSStyle
	// TagsCommunities: the AS tags routes with ingress-point BGP
	// communities (validation source, §6).
	TagsCommunities bool
	// OpenPeering ASes accept multilateral peering via route servers.
	OpenPeering bool
	// RunsLookingGlass: operates a public looking glass (internal/platform).
	RunsLookingGlass bool
	// PublishesNOCPage: full facility list available on the NOC website
	// (registry augmentation source, Figure 2).
	PublishesNOCPage bool
}

// InterfaceKind says what a router interface is for.
type InterfaceKind int

const (
	// CoreIface is the router's backbone-facing interface; it sources
	// replies when the previous hop is inside the same AS.
	CoreIface InterfaceKind = iota
	// IXPPort is a port on an IXP peering LAN, numbered from the IXP
	// prefix (public peering, §2).
	IXPPort
	// PrivateSide is one end of a private interconnect /30 (cross-
	// connect, tethering or long-haul private link).
	PrivateSide
)

func (k InterfaceKind) String() string {
	switch k {
	case CoreIface:
		return "core"
	case IXPPort:
		return "ixp-port"
	case PrivateSide:
		return "private-side"
	default:
		return fmt.Sprintf("InterfaceKind(%d)", int(k))
	}
}

// Interface is a router interface with an IP address.
type Interface struct {
	ID     InterfaceID
	IP     netaddr.IP
	Router RouterID
	Kind   InterfaceKind
	// IXP and Switch are set for IXPPort interfaces.
	IXP    IXPID
	Switch SwitchID
	// Link is set for PrivateSide interfaces.
	Link LinkID
}

// Router is a layer-3 device owned by one AS.
type Router struct {
	ID RouterID
	AS ASN
	// Facility is the building housing the router, or None for routers
	// at off-facility PoPs (remote-peering routers, access aggregation).
	Facility FacilityID
	Metro    geo.MetroID
	Coord    geo.Coord
	// Interfaces lists every interface on the router; index 0 is always
	// the CoreIface.
	Interfaces []InterfaceID

	IPID IPIDBehavior
	// RespondsToTraceroute: false models hops that appear as '*'.
	RespondsToTraceroute bool
}

// Core returns the router's core interface ID.
func (r *Router) Core() InterfaceID { return r.Interfaces[0] }

// Membership records an AS's connection to an IXP: the router, the port
// interface and the access switch it lands on. Remote memberships reach
// the IXP through a reseller; their router can be anywhere (§2).
type Membership struct {
	ID           MembershipID
	AS           ASN
	IXP          IXPID
	Router       RouterID
	Port         InterfaceID
	AccessSwitch SwitchID
	Remote       bool
	Reseller     ASN // reseller AS for remote memberships, else 0
}

// LinkKind is the engineering approach of an interconnection (§2).
type LinkKind int

const (
	// PublicPeering is a BGP session across an IXP LAN.
	PublicPeering LinkKind = iota
	// CrossConnect is a physical private interconnect inside one
	// facility (or a sister-facility pair).
	CrossConnect
	// Tethering is a private VLAN point-to-point carried over an IXP
	// fabric between two members (§2 "Private Interconnects over IXP").
	Tethering
	// LongHaulPrivate is a private interconnect between routers in
	// different metros (leased wave / dark fiber); it shows up in
	// traceroutes like a cross-connect but has no common facility.
	LongHaulPrivate
)

func (k LinkKind) String() string {
	switch k {
	case PublicPeering:
		return "public-peering"
	case CrossConnect:
		return "cross-connect"
	case Tethering:
		return "tethering"
	case LongHaulPrivate:
		return "long-haul-private"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Relationship is the business relationship carried on a link.
type Relationship int

const (
	PeerToPeer Relationship = iota
	// CustomerToProvider: side A is the customer of side B.
	CustomerToProvider
)

func (r Relationship) String() string {
	if r == PeerToPeer {
		return "p2p"
	}
	return "c2p"
}

// Link is one interconnection between two ASes.
type Link struct {
	ID   LinkID
	Kind LinkKind
	Rel  Relationship
	// A and B are the two border routers; for CustomerToProvider, A is
	// the customer side.
	A, B RouterID
	// AIface/BIface are the interfaces carrying the session: IXP ports
	// for PublicPeering, /30 sides otherwise.
	AIface, BIface InterfaceID
	// IXP is set for PublicPeering and Tethering.
	IXP IXPID
	// Multilateral marks sessions learned via the IXP route server.
	Multilateral bool
}
