package world

import "facilitymap/internal/geo"

// metroSeed is an embedded metropolitan area with a weight steering how
// much interconnection infrastructure the generator places there. The
// list leads with the metros of the paper's Figure 3 (cities with at
// least 10 interconnection facilities, in the paper's order) so that the
// generated facility ranking reproduces the figure's shape, followed by
// smaller markets for long-tail realism.
type metroSeed struct {
	name    string
	country string
	region  geo.Region
	lat     float64
	lon     float64
	weight  float64 // relative infrastructure mass; London = 1.0
	aliases []string
	airport string // IATA-style code used by DNS naming conventions
}

var metroSeeds = []metroSeed{
	// Figure 3 metros, descending facility count.
	{"London", "GB", geo.Europe, 51.5074, -0.1278, 1.00, []string{"Slough", "Docklands"}, "LHR"},
	{"New York", "US", geo.NorthAmerica, 40.7128, -74.0060, 0.93, []string{"Jersey City", "Secaucus", "Newark"}, "JFK"},
	{"Paris", "FR", geo.Europe, 48.8566, 2.3522, 0.80, []string{"Saint-Denis", "Aubervilliers"}, "CDG"},
	{"Frankfurt", "DE", geo.Europe, 50.1109, 8.6821, 0.78, []string{"Offenbach"}, "FRA"},
	{"Amsterdam", "NL", geo.Europe, 52.3676, 4.9041, 0.75, []string{"Haarlem", "Schiphol-Rijk"}, "AMS"},
	{"San Jose", "US", geo.NorthAmerica, 37.3382, -121.8863, 0.68, []string{"Santa Clara", "Milpitas"}, "SJC"},
	{"Moscow", "RU", geo.Europe, 55.7558, 37.6173, 0.62, nil, "SVO"},
	{"Los Angeles", "US", geo.NorthAmerica, 34.0522, -118.2437, 0.60, []string{"El Segundo"}, "LAX"},
	{"Stockholm", "SE", geo.Europe, 59.3293, 18.0686, 0.56, []string{"Kista"}, "ARN"},
	{"Manchester", "GB", geo.Europe, 53.4808, -2.2426, 0.52, []string{"Salford"}, "MAN"},
	{"Miami", "US", geo.NorthAmerica, 25.7617, -80.1918, 0.50, nil, "MIA"},
	{"Berlin", "DE", geo.Europe, 52.5200, 13.4050, 0.48, nil, "BER"},
	{"Tokyo", "JP", geo.Asia, 35.6762, 139.6503, 0.47, []string{"Otemachi"}, "NRT"},
	{"Kiev", "UA", geo.Europe, 50.4501, 30.5234, 0.45, nil, "KBP"},
	{"Sao Paulo", "BR", geo.SouthAmerica, -23.5505, -46.6333, 0.44, []string{"Barueri"}, "GRU"},
	{"Vienna", "AT", geo.Europe, 48.2082, 16.3738, 0.42, nil, "VIE"},
	{"Singapore", "SG", geo.Asia, 1.3521, 103.8198, 0.41, nil, "SIN"},
	{"Auckland", "NZ", geo.Oceania, -36.8509, 174.7645, 0.40, nil, "AKL"},
	{"Hong Kong", "HK", geo.Asia, 22.3193, 114.1694, 0.39, []string{"Kowloon"}, "HKG"},
	{"Melbourne", "AU", geo.Oceania, -37.8136, 144.9631, 0.38, nil, "MEL"},
	{"Montreal", "CA", geo.NorthAmerica, 45.5017, -73.5673, 0.37, nil, "YUL"},
	{"Zurich", "CH", geo.Europe, 47.3769, 8.5417, 0.36, nil, "ZRH"},
	{"Prague", "CZ", geo.Europe, 50.0755, 14.4378, 0.35, nil, "PRG"},
	{"Seattle", "US", geo.NorthAmerica, 47.6062, -122.3321, 0.34, []string{"Tukwila"}, "SEA"},
	{"Chicago", "US", geo.NorthAmerica, 41.8781, -87.6298, 0.33, []string{"Elk Grove Village"}, "ORD"},
	{"Dallas", "US", geo.NorthAmerica, 32.7767, -96.7970, 0.32, []string{"Richardson"}, "DFW"},
	{"Hamburg", "DE", geo.Europe, 53.5511, 9.9937, 0.31, nil, "HAM"},
	{"Atlanta", "US", geo.NorthAmerica, 33.7490, -84.3880, 0.30, nil, "ATL"},
	{"Bucharest", "RO", geo.Europe, 44.4268, 26.1025, 0.29, nil, "OTP"},
	{"Madrid", "ES", geo.Europe, 40.4168, -3.7038, 0.28, nil, "MAD"},
	{"Milan", "IT", geo.Europe, 45.4642, 9.1900, 0.27, nil, "MXP"},
	{"Duesseldorf", "DE", geo.Europe, 51.2277, 6.7735, 0.26, nil, "DUS"},
	{"Sofia", "BG", geo.Europe, 42.6977, 23.3219, 0.25, nil, "SOF"},
	{"St. Petersburg", "RU", geo.Europe, 59.9311, 30.3609, 0.24, nil, "LED"},
	// Long-tail metros beyond Figure 3's ≥10-facility cut.
	{"Washington", "US", geo.NorthAmerica, 38.9072, -77.0369, 0.55, []string{"Ashburn", "Reston"}, "IAD"},
	{"Toronto", "CA", geo.NorthAmerica, 43.6532, -79.3832, 0.30, nil, "YYZ"},
	{"Sydney", "AU", geo.Oceania, -33.8688, 151.2093, 0.33, nil, "SYD"},
	{"Mumbai", "IN", geo.Asia, 19.0760, 72.8777, 0.25, nil, "BOM"},
	{"Seoul", "KR", geo.Asia, 37.5665, 126.9780, 0.28, nil, "ICN"},
	{"Johannesburg", "ZA", geo.Africa, -26.2041, 28.0473, 0.22, nil, "JNB"},
	{"Nairobi", "KE", geo.Africa, -1.2921, 36.8219, 0.12, nil, "NBO"},
	{"Buenos Aires", "AR", geo.SouthAmerica, -34.6037, -58.3816, 0.18, nil, "EZE"},
	{"Mexico City", "MX", geo.NorthAmerica, 19.4326, -99.1332, 0.16, nil, "MEX"},
	{"Warsaw", "PL", geo.Europe, 52.2297, 21.0122, 0.21, nil, "WAW"},
	{"Brussels", "BE", geo.Europe, 50.8503, 4.3517, 0.18, nil, "BRU"},
	{"Copenhagen", "DK", geo.Europe, 55.6761, 12.5683, 0.19, nil, "CPH"},
	{"Oslo", "NO", geo.Europe, 59.9139, 10.7522, 0.16, nil, "OSL"},
	{"Helsinki", "FI", geo.Europe, 60.1699, 24.9384, 0.15, nil, "HEL"},
	{"Dublin", "IE", geo.Europe, 53.3498, -6.2603, 0.20, nil, "DUB"},
	{"Lisbon", "PT", geo.Europe, 38.7223, -9.1393, 0.13, nil, "LIS"},
	{"Rome", "IT", geo.Europe, 41.9028, 12.4964, 0.14, nil, "FCO"},
	{"Osaka", "JP", geo.Asia, 34.6937, 135.5023, 0.17, nil, "KIX"},
	{"Jakarta", "ID", geo.Asia, -6.2088, 106.8456, 0.13, nil, "CGK"},
	{"Santiago", "CL", geo.SouthAmerica, -33.4489, -70.6693, 0.12, nil, "SCL"},
	// Additional markets used by the paper-scale profile only (the
	// default profile pins NumMetros to the 54 above).
	{"Denver", "US", geo.NorthAmerica, 39.7392, -104.9903, 0.15, nil, "DEN"},
	{"Phoenix", "US", geo.NorthAmerica, 33.4484, -112.0740, 0.12, nil, "PHX"},
	{"Boston", "US", geo.NorthAmerica, 42.3601, -71.0589, 0.14, nil, "BOS"},
	{"Houston", "US", geo.NorthAmerica, 29.7604, -95.3698, 0.12, nil, "IAH"},
	{"Minneapolis", "US", geo.NorthAmerica, 44.9778, -93.2650, 0.11, nil, "MSP"},
	{"Vancouver", "CA", geo.NorthAmerica, 49.2827, -123.1207, 0.12, nil, "YVR"},
	{"Munich", "DE", geo.Europe, 48.1351, 11.5820, 0.18, nil, "MUC"},
	{"Barcelona", "ES", geo.Europe, 41.3874, 2.1686, 0.14, nil, "BCN"},
	{"Lyon", "FR", geo.Europe, 45.7640, 4.8357, 0.10, nil, "LYS"},
	{"Marseille", "FR", geo.Europe, 43.2965, 5.3698, 0.15, nil, "MRS"},
	{"Geneva", "CH", geo.Europe, 46.2044, 6.1432, 0.10, nil, "GVA"},
	{"Budapest", "HU", geo.Europe, 47.4979, 19.0402, 0.12, nil, "BUD"},
	{"Athens", "GR", geo.Europe, 37.9838, 23.7275, 0.10, nil, "ATH"},
	{"Istanbul", "TR", geo.Europe, 41.0082, 28.9784, 0.16, nil, "IST"},
	{"Bratislava", "SK", geo.Europe, 48.1486, 17.1077, 0.08, nil, "BTS"},
	{"Zagreb", "HR", geo.Europe, 45.8150, 15.9819, 0.08, nil, "ZAG"},
	{"Riga", "LV", geo.Europe, 56.9496, 24.1052, 0.09, nil, "RIX"},
	{"Tallinn", "EE", geo.Europe, 59.4370, 24.7536, 0.08, nil, "TLL"},
	{"Taipei", "TW", geo.Asia, 25.0330, 121.5654, 0.14, nil, "TPE"},
	{"Kuala Lumpur", "MY", geo.Asia, 3.1390, 101.6869, 0.12, nil, "KUL"},
	{"Bangkok", "TH", geo.Asia, 13.7563, 100.5018, 0.12, nil, "BKK"},
	{"Manila", "PH", geo.Asia, 14.5995, 120.9842, 0.10, nil, "MNL"},
	{"Chennai", "IN", geo.Asia, 13.0827, 80.2707, 0.11, nil, "MAA"},
	{"Dubai", "AE", geo.Asia, 25.2048, 55.2708, 0.14, nil, "DXB"},
	{"Brisbane", "AU", geo.Oceania, -27.4698, 153.0251, 0.10, nil, "BNE"},
	{"Perth", "AU", geo.Oceania, -31.9505, 115.8605, 0.09, nil, "PER"},
	{"Wellington", "NZ", geo.Oceania, -41.2866, 174.7756, 0.07, nil, "WLG"},
	{"Cape Town", "ZA", geo.Africa, -33.9249, 18.4241, 0.11, nil, "CPT"},
	{"Lagos", "NG", geo.Africa, 6.5244, 3.3792, 0.10, nil, "LOS"},
	{"Cairo", "EG", geo.Africa, 30.0444, 31.2357, 0.10, nil, "CAI"},
	{"Rio de Janeiro", "BR", geo.SouthAmerica, -22.9068, -43.1729, 0.13, nil, "GIG"},
	{"Bogota", "CO", geo.SouthAmerica, 4.7110, -74.0721, 0.10, nil, "BOG"},
	{"Lima", "PE", geo.SouthAmerica, -12.0464, -77.0428, 0.09, nil, "LIM"},
}

// MaxMetros is the number of embedded metropolitan areas available.
var MaxMetros = len(metroSeeds)

// maxSyntheticMetros bounds Config.SyntheticMetros: the synthetic
// airport-code space ("X" plus two letters) holds 676 codes, and none of
// the embedded IATA codes start with X, so codes stay collision-free.
const maxSyntheticMetros = 650

// syntheticAirport derives the IATA-style code for the i-th satellite
// metro.
func syntheticAirport(i int) string {
	return string([]byte{'X', byte('A' + (i/26)%26), byte('A' + i%26)})
}

// MetroAirport returns the IATA-style code the DNS naming substrate uses
// for a metro.
func (w *World) MetroAirport(id geo.MetroID) string {
	return w.airports[id]
}
