package world

import "testing"

// TestLargeProfileSmoke generates the internet-scale profile and checks
// the generator invariants the sharded engine depends on: population
// floors (tens of thousands of ASes, hundreds of metros, order of a
// million interfaces), no orphan members, unique addressing, and
// well-formed routers. Generation takes ~10s, so -short skips it; the
// nightly CI job runs it in full.
func TestLargeProfileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("Large profile generation is too slow for -short")
	}
	w := Generate(Large())

	if n := len(w.ASes); n < 20000 {
		t.Errorf("Large world has %d ASes, want tens of thousands", n)
	}
	if n := len(w.Metros); n < 200 {
		t.Errorf("Large world has %d metros, want hundreds", n)
	}
	if n := len(w.Interfaces); n < 500000 {
		t.Errorf("Large world has %d interfaces, want order of a million", n)
	}

	// Unique ASNs and at least one router per AS.
	asns := make(map[ASN]bool, len(w.ASes))
	for _, as := range w.ASes {
		if asns[as.ASN] {
			t.Fatalf("duplicate ASN %v", as.ASN)
		}
		asns[as.ASN] = true
		if len(as.Routers) == 0 {
			t.Fatalf("%v has no routers", as.ASN)
		}
		for _, f := range as.Facilities {
			if f < 0 || int(f) >= len(w.Facilities) {
				t.Fatalf("%v lists invalid facility %d", as.ASN, f)
			}
		}
	}

	// Unique interface addressing and dense IDs.
	ips := make(map[uint32]InterfaceID, len(w.Interfaces))
	for i, ifc := range w.Interfaces {
		if int(ifc.ID) != i {
			t.Fatalf("interface %d has ID %d", i, ifc.ID)
		}
		if prev, dup := ips[uint32(ifc.IP)]; dup {
			t.Fatalf("interfaces %d and %d share IP %v", prev, ifc.ID, ifc.IP)
		}
		ips[uint32(ifc.IP)] = ifc.ID
		if w.Routers[ifc.Router] == nil {
			t.Fatalf("interface %d references missing router %d", i, ifc.Router)
		}
	}

	// Every router's first interface is its core interface, and every
	// router belongs to its AS's router list world (checked via AS field).
	for i, r := range w.Routers {
		if int(r.ID) != i {
			t.Fatalf("router %d has ID %d", i, r.ID)
		}
		if len(r.Interfaces) == 0 || w.Interfaces[r.Interfaces[0]].Kind != CoreIface {
			t.Fatalf("router %d lacks a core interface", i)
		}
		if w.ASByNumber(r.AS) == nil {
			t.Fatalf("router %d owned by unknown %v", i, r.AS)
		}
	}

	// No orphan members: the membership's router belongs to the member
	// AS, and the port is an IXP port of that exchange on that router.
	for _, m := range w.Memberships {
		r := w.Routers[m.Router]
		if r.AS != m.AS {
			t.Fatalf("membership %d: router %d belongs to %v, not member %v", m.ID, m.Router, r.AS, m.AS)
		}
		port := w.Interfaces[m.Port]
		if port.Router != m.Router || port.Kind != IXPPort || port.IXP != m.IXP {
			t.Fatalf("membership %d has inconsistent port %+v", m.ID, *port)
		}
		if w.IXPs[m.IXP].Inactive {
			t.Fatalf("membership %d joined inactive IXP %d", m.ID, m.IXP)
		}
	}

	// Links reference interfaces on their own routers.
	for _, l := range w.Links {
		if w.Interfaces[l.AIface].Router != l.A || w.Interfaces[l.BIface].Router != l.B {
			t.Fatalf("link %d interfaces disagree with its routers", l.ID)
		}
	}
}
