package world

import (
	"sort"

	"facilitymap/internal/geo"
	"facilitymap/internal/netaddr"
)

// ASN ranges per type keep generated numbers recognisable in output.
const (
	tier1BaseASN      = 100
	transitBaseASN    = 2000
	contentBaseASN    = 15000
	accessBaseASN     = 30000
	enterpriseBaseASN = 60000
)

func (b *builder) newAS(n ASN, name string, typ ASType, region geo.Region, prefixBits uint8) *AS {
	parent, err := b.asPool.AllocPrefix(prefixBits)
	if err != nil {
		panic("world: AS address pool exhausted: " + err.Error())
	}
	as := &AS{
		ASN:      n,
		Name:     name,
		Type:     typ,
		Region:   region,
		Prefixes: []netaddr.Prefix{parent},
	}
	// Real networks announce several more-specifics alongside the
	// aggregate; the paper picks "one active IP per prefix" as targets,
	// so the table shape matters. Same origin, so IP-to-ASN lookups are
	// unaffected.
	if parent.Bits <= 28 {
		k := 1 + int(n%3)
		for i := 0; i < k; i++ {
			sub, err := parent.Subnet(parent.Bits+2, uint64(i))
			if err == nil {
				as.Prefixes = append(as.Prefixes, sub)
			}
		}
	}
	b.w.ASes = append(b.w.ASes, as)
	// Populate the ASN index eagerly so builder-time lookups
	// (byASNOrNil in the peering passes) stay O(1) at Large scale;
	// buildIndexes rebuilds the same mapping at the end.
	if b.w.byASN == nil {
		b.w.byASN = make(map[ASN]*AS)
	}
	b.w.byASN[n] = as
	b.asAlloc[n] = netaddr.NewAllocator(parent)
	b.peersM[n] = make(map[ASN]bool)
	b.providersM[n] = make(map[ASN]bool)
	return as
}

// allocIP hands out an address from an AS's own space.
func (b *builder) allocIP(as ASN) netaddr.IP {
	ip, err := b.asAlloc[as].AllocIP()
	if err != nil {
		panic("world: AS space exhausted for " + as.String())
	}
	return ip
}

// allocP2P hands out a /30 from an AS's space, returning the two usable
// host addresses.
func (b *builder) allocP2P(as ASN) (a, z netaddr.IP) {
	p, err := b.asAlloc[as].AllocPrefix(30)
	if err != nil {
		panic("world: AS space exhausted for " + as.String())
	}
	return p.Addr + 1, p.Addr + 2
}

func (b *builder) randIPID() IPIDBehavior {
	x := b.rng.Float64()
	switch {
	case x < 0.80:
		return IPIDSharedCounter
	case x < 0.88:
		return IPIDRandom
	case x < 0.93:
		return IPIDConstant
	default:
		return IPIDUnresponsive
	}
}

// addRouter creates a router (with its core interface) for an AS, either
// inside a facility or off-facility in a metro, reusing an existing router
// at the same location.
func (b *builder) addRouter(as *AS, fac FacilityID, metro geo.MetroID, ipid IPIDBehavior) RouterID {
	key := routerKey{as.ASN, fac, metro}
	if id, ok := b.routerAt[key]; ok {
		return id
	}
	var coord geo.Coord
	if fac != None {
		coord = b.w.Facilities[fac].Coord
		metro = b.w.Facilities[fac].Metro
		key.met = metro
		if id, ok := b.routerAt[key]; ok {
			return id
		}
	} else {
		coord = b.jitterCoord(b.w.Metros[metro].Center)
	}
	r := &Router{
		ID:                   RouterID(len(b.w.Routers)),
		AS:                   as.ASN,
		Facility:             fac,
		Metro:                metro,
		Coord:                coord,
		IPID:                 ipid,
		RespondsToTraceroute: b.rng.Float64() > 0.02,
	}
	b.w.Routers = append(b.w.Routers, r)
	as.Routers = append(as.Routers, r.ID)
	b.routerAt[key] = r.ID
	// Core interface.
	b.addInterface(r, CoreIface, b.allocIP(as.ASN), None, None, None)
	return r.ID
}

func (b *builder) addInterface(r *Router, kind InterfaceKind, ip netaddr.IP, ix IXPID, sw SwitchID, link LinkID) InterfaceID {
	ifc := &Interface{
		ID:     InterfaceID(len(b.w.Interfaces)),
		IP:     ip,
		Router: r.ID,
		Kind:   kind,
		IXP:    ix,
		Switch: sw,
		Link:   link,
	}
	b.w.Interfaces = append(b.w.Interfaces, ifc)
	r.Interfaces = append(r.Interfaces, ifc.ID)
	return ifc.ID
}

// joinFacility records AS presence at a facility (idempotent).
func (b *builder) joinFacility(as *AS, f FacilityID) {
	for _, g := range as.Facilities {
		if g == f {
			return
		}
	}
	as.Facilities = append(as.Facilities, f)
}

// scaledBits widens an AS type's per-network prefix (halving the block)
// each time the population doubles past maxAtBase, keeping the type's
// total address budget constant so Large populations fit the shared
// 20.0.0.0/7 pool. Every profile up to PaperScale stays below maxAtBase
// and keeps its historical block size (and so its exact addresses).
func scaledBits(base uint8, count, maxAtBase int) uint8 {
	bits := base
	for count > maxAtBase {
		bits++
		maxAtBase *= 2
	}
	return bits
}

func (b *builder) genASes() {
	regions := []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia}
	tier1Bits := scaledBits(14, b.cfg.NumTier1, 16)
	contentBits := scaledBits(15, b.cfg.NumContent, 16)
	transitBits := scaledBits(17, b.cfg.NumTransit, 96)
	accessBits := scaledBits(19, b.cfg.NumAccess, 1024)
	enterpriseBits := scaledBits(21, b.cfg.NumEnterprise, 256)
	// Tier-1 transit providers: global footprint, private-peering heavy.
	for i := 0; i < b.cfg.NumTier1; i++ {
		as := b.newAS(ASN(tier1BaseASN+i), tier1Name(i), Tier1, regions[i%len(regions)], tier1Bits)
		as.TagsCommunities = true
		as.RunsLookingGlass = true
		as.PublishesNOCPage = b.rng.Float64() < 0.9
		as.DNSStyle = []DNSStyle{DNSFacility, DNSAirport, DNSCLLI}[i%3]
		ipid := b.randIPID()
		for mi, m := range b.w.Metros {
			w := b.metroWeights[mi]
			if w < 0.2 || b.rng.Float64() > 0.55+w*0.45 {
				continue
			}
			facs := b.facsByMetro[m.ID]
			n := 1
			if w > 0.5 && len(facs) > 2 {
				n = 1 + b.rng.Intn(2)
			}
			perm := b.rng.Perm(len(facs))
			for j := 0; j < n && j < len(facs); j++ {
				f := facs[perm[j]]
				b.joinFacility(as, f)
				b.addRouter(as, f, m.ID, ipid)
			}
		}
		b.ensurePresence(as, ipid)
	}
	// Content / CDN networks: global, public-peering heavy; the first is
	// styled after Google: no DNS, unresponsive to alias probes.
	for i := 0; i < b.cfg.NumContent; i++ {
		as := b.newAS(ASN(contentBaseASN+i*10), contentName(i), Content, regions[i%len(regions)], contentBits)
		as.OpenPeering = true
		as.PublishesNOCPage = b.rng.Float64() < 0.9
		ipid := b.randIPID()
		if i == 0 {
			as.DNSStyle = DNSNone
			ipid = IPIDUnresponsive
		} else {
			as.DNSStyle = []DNSStyle{DNSAirport, DNSNone, DNSFacility}[i%3]
		}
		for mi, m := range b.w.Metros {
			w := b.metroWeights[mi]
			if w < 0.28 || b.rng.Float64() > 0.5+w*0.5 {
				continue
			}
			facs := b.ixpHeavyFacilities(m.ID)
			if len(facs) == 0 {
				continue
			}
			f := facs[b.rng.Intn(len(facs))]
			b.joinFacility(as, f)
			b.addRouter(as, f, m.ID, ipid)
		}
		b.ensurePresence(as, ipid)
	}
	// Regional transit providers.
	for i := 0; i < b.cfg.NumTransit; i++ {
		region := b.w.Metros[b.weightedMetro(-1)].Region
		as := b.newAS(ASN(transitBaseASN+i*3), transitName(i), Transit, region, transitBits)
		as.TagsCommunities = b.rng.Float64() < 0.7
		as.RunsLookingGlass = b.rng.Float64() < 0.6
		as.PublishesNOCPage = b.rng.Float64() < 0.65
		as.DNSStyle = []DNSStyle{DNSAirport, DNSCLLI, DNSStale, DNSFacility, DNSNone}[b.rng.Intn(5)]
		ipid := b.randIPID()
		nMetros := 2 + b.rng.Intn(5)
		for j := 0; j < nMetros; j++ {
			m := b.weightedMetro(region)
			facs := b.facsByMetro[m]
			if len(facs) == 0 {
				continue
			}
			f := facs[b.rng.Intn(len(facs))]
			b.joinFacility(as, f)
			b.addRouter(as, f, m, ipid)
		}
		if len(as.Facilities) == 0 {
			// Guarantee at least one point of presence.
			m := b.weightedMetro(-1)
			f := b.facsByMetro[m][0]
			b.joinFacility(as, f)
			b.addRouter(as, f, m, ipid)
		}
	}
	// Access / eyeball networks: national scope.
	for i := 0; i < b.cfg.NumAccess; i++ {
		home := b.weightedMetro(-1)
		m := b.w.Metros[home]
		as := b.newAS(ASN(accessBaseASN+i*2), accessName(m.Name, i), Access, m.Region, accessBits)
		as.DNSStyle = []DNSStyle{DNSNone, DNSStale, DNSAirport}[b.rng.Intn(3)]
		as.OpenPeering = b.rng.Float64() < 0.6
		ipid := b.randIPID()
		// Off-facility aggregation router in the home metro: hosts
		// vantage points and enterprise customers.
		b.addRouter(as, None, home, ipid)
		if facs := b.facsByMetro[home]; len(facs) > 0 && b.rng.Float64() < 0.75 {
			f := facs[b.rng.Intn(len(facs))]
			b.joinFacility(as, f)
			b.addRouter(as, f, home, ipid)
			if len(facs) > 1 && b.rng.Float64() < 0.3 {
				g := facs[b.rng.Intn(len(facs))]
				if g != f {
					b.joinFacility(as, g)
					b.addRouter(as, g, home, ipid)
				}
			}
		}
	}
	// Enterprise stubs: off-facility only. The base floats above the
	// access range when an internet-scale access population would
	// otherwise collide with it (access ASNs grow by 2 per network);
	// every profile up to PaperScale keeps the historical 60000 base.
	entBase := ASN(enterpriseBaseASN)
	if over := ASN(accessBaseASN + 2*b.cfg.NumAccess); over > entBase {
		entBase = over
	}
	for i := 0; i < b.cfg.NumEnterprise; i++ {
		home := b.weightedMetro(-1)
		as := b.newAS(entBase+ASN(i), enterpriseName(i), Enterprise, b.w.Metros[home].Region, enterpriseBits)
		as.DNSStyle = DNSNone
		b.addRouter(as, None, home, b.randIPID())
	}
	sort.Slice(b.w.ASes, func(i, j int) bool { return b.w.ASes[i].ASN < b.w.ASes[j].ASN })
}

// ensurePresence guarantees an AS has at least one facility and router.
func (b *builder) ensurePresence(as *AS, ipid IPIDBehavior) {
	if len(as.Routers) > 0 {
		return
	}
	m := geo.MetroID(0)
	f := b.facsByMetro[m][0]
	b.joinFacility(as, f)
	b.addRouter(as, f, m, ipid)
}

// ixpHeavyFacilities returns the facilities in a metro that host at least
// one IXP access switch, falling back to all facilities.
func (b *builder) ixpHeavyFacilities(m geo.MetroID) []FacilityID {
	hosts := make(map[FacilityID]bool)
	for _, ix := range b.w.IXPs {
		if ix.Inactive || ix.Metro != m {
			continue
		}
		for _, f := range ix.Facilities {
			hosts[f] = true
		}
	}
	var out []FacilityID
	for _, f := range b.facsByMetro[m] {
		if hosts[f] {
			out = append(out, f)
		}
	}
	if len(out) == 0 {
		return b.facsByMetro[m]
	}
	return out
}

func (b *builder) assignResellers() {
	var transits []ASN
	for _, as := range b.w.ASes {
		if as.Type == Transit || as.Type == Tier1 {
			transits = append(transits, as.ASN)
		}
	}
	for _, ix := range b.w.IXPs {
		if ix.Inactive || len(transits) == 0 {
			continue
		}
		n := 1 + b.rng.Intn(2)
		for i := 0; i < n; i++ {
			ix.Resellers = append(ix.Resellers, transits[b.rng.Intn(len(transits))])
		}
	}
}
