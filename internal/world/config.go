package world

// Config controls world generation. Profiles: Small (unit tests),
// Default (examples, experiments), PaperScale (benchmarks approximating
// the paper's dataset sizes).
type Config struct {
	Seed int64

	// NumMetros caps how many embedded metros are instantiated (in
	// weight order). 0 means all.
	NumMetros int
	// SyntheticMetros appends generated satellite markets beyond the
	// embedded seed list: each satellite orbits an embedded hub metro
	// (same country and region, a fraction of its weight) at a distinct
	// coordinate far enough away that registry normalisation keeps it a
	// separate metro cluster. 0 — the value in every profile up to
	// Large — generates the embedded list only, byte-identically to
	// configs predating the knob.
	SyntheticMetros int
	// FacilityDensity scales facilities per metro: a metro of weight w
	// gets about w*FacilityDensity facilities (at least one).
	FacilityDensity float64
	// NumIXPs is the approximate number of active IXPs.
	NumIXPs int
	// InactiveIXPs is the number of defunct IXPs that still appear in
	// stale registry sources and must be filtered (§3.1.2).
	InactiveIXPs int

	// AS population by type.
	NumTier1, NumTransit, NumContent, NumAccess, NumEnterprise int

	// RemotePeerFrac is the probability that an IXP membership without a
	// local facility presence connects remotely through a reseller
	// instead of deploying into a partner facility (~20% at AMS-IX, §2).
	RemotePeerFrac float64
	// TetheringFrac is the probability that two members of a common IXP
	// lacking a common facility establish a private VLAN over the fabric.
	TetheringFrac float64

	// ColoMeshDegree adds a bounded-degree cross-connect mesh among the
	// ASes co-located in each facility: every resident privately
	// interconnects with up to this many of its ASN-order neighbours in
	// the same building. This is what carries the Large profile to an
	// order-of-a-million interfaces. 0 — the value in every profile up
	// to Large — disables the tier and leaves older configs
	// byte-identical.
	ColoMeshDegree int
}

// Small returns a world small enough for fast unit tests.
func Small() Config {
	return Config{
		Seed:            1,
		NumMetros:       10,
		FacilityDensity: 5,
		NumIXPs:         8,
		InactiveIXPs:    2,
		NumTier1:        3,
		NumTransit:      8,
		NumContent:      3,
		NumAccess:       20,
		NumEnterprise:   8,
		RemotePeerFrac:  0.25,
		TetheringFrac:   0.15,
	}
}

// Medium returns a world between Small and Default: big enough that
// engine hot paths dominate wall time, small enough for a CI bench run.
func Medium() Config {
	return Config{
		Seed:            7,
		NumMetros:       24,
		FacilityDensity: 8,
		NumIXPs:         24,
		InactiveIXPs:    3,
		NumTier1:        6,
		NumTransit:      24,
		NumContent:      6,
		NumAccess:       70,
		NumEnterprise:   30,
		RemotePeerFrac:  0.22,
		TetheringFrac:   0.13,
	}
}

// Default returns the standard experiment world: a few hundred facilities,
// ~60 IXPs and ~300 ASes.
func Default() Config {
	return Config{
		Seed:            42,
		NumMetros:       54, // the Figure 3 metros plus the first tail
		FacilityDensity: 12,
		NumIXPs:         55,
		InactiveIXPs:    6,
		NumTier1:        10,
		NumTransit:      50,
		NumContent:      12,
		NumAccess:       150,
		NumEnterprise:   80,
		RemotePeerFrac:  0.20,
		TetheringFrac:   0.12,
	}
}

// PaperScale returns a configuration whose facility and IXP counts
// approach the paper's dataset (1,694 facilities, 368 IXPs). Use for
// benchmarks; generation takes a few seconds.
func PaperScale() Config {
	c := Default()
	c.NumMetros = 0 // every embedded metro
	c.FacilityDensity = 40
	c.NumIXPs = 120
	c.NumAccess = 400
	c.NumTransit = 90
	c.NumEnterprise = 200
	return c
}

// Large returns an internet-scale world: tens of thousands of ASes,
// hundreds of metros and on the order of a million interfaces. It is the
// profile the sharded CFS engine exists for; generation takes tens of
// seconds and convergence should run with Config.Shards > 1.
func Large() Config {
	return Config{
		Seed:            9,
		NumMetros:       0,   // every embedded metro...
		SyntheticMetros: 172, // ...plus satellite markets (260 total)
		FacilityDensity: 16,
		NumIXPs:         160,
		InactiveIXPs:    12,
		NumTier1:        12,
		NumTransit:      800,
		NumContent:      64,
		NumAccess:       18000,
		NumEnterprise:   12000,
		RemotePeerFrac:  0.20,
		TetheringFrac:   0.08,
		ColoMeshDegree:  10,
	}
}

func (c Config) withDefaults() Config {
	if c.NumMetros <= 0 || c.NumMetros > MaxMetros {
		c.NumMetros = MaxMetros
	}
	if c.SyntheticMetros < 0 {
		c.SyntheticMetros = 0
	}
	if c.SyntheticMetros > maxSyntheticMetros {
		c.SyntheticMetros = maxSyntheticMetros
	}
	if c.ColoMeshDegree < 0 {
		c.ColoMeshDegree = 0
	}
	if c.FacilityDensity <= 0 {
		c.FacilityDensity = 12
	}
	if c.NumIXPs <= 0 {
		c.NumIXPs = 10
	}
	if c.NumTier1 <= 0 {
		c.NumTier1 = 3
	}
	return c
}
