package world

import (
	"fmt"
	"math/rand"
	"sort"

	"facilitymap/internal/geo"
	"facilitymap/internal/netaddr"
)

// Generate builds a deterministic ground-truth world from the config.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	b := &builder{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		w: &World{
			airports: make(map[geo.MetroID]string),
		},
		ixpPool:     netaddr.NewAllocator(netaddr.MustParsePrefix("195.0.0.0/8")),
		asPool:      netaddr.NewAllocator(netaddr.MustParsePrefix("20.0.0.0/7")),
		asAlloc:     make(map[ASN]*netaddr.Allocator),
		facsByMetro: make(map[geo.MetroID][]FacilityID),
		routerAt:    make(map[routerKey]RouterID),
		linkSeen:    make(map[linkKey]bool),
		memberDone:  make(map[memberKey]bool),
		peersM:      make(map[ASN]map[ASN]bool),
		providersM:  make(map[ASN]map[ASN]bool),

		ixpsOfAS:     make(map[ASN][]IXPID),
		memberRouter: make(map[memberKey]RouterID),
	}
	b.genMetros()
	b.genFacilities()
	b.genIXPs()
	b.genASes()
	b.assignResellers()
	b.genMemberships()
	b.genPublicPeering()
	b.genPrivateLinks()
	b.genColoMesh()
	b.finishRelationships()
	b.w.buildIndexes()
	return b.w
}

type routerKey struct {
	as  ASN
	fac FacilityID // None for off-facility PoP routers (keyed by metro)
	met geo.MetroID
}

type linkKey struct {
	a, b RouterID
	kind LinkKind
}

type memberKey struct {
	as ASN
	ix IXPID
}

type builder struct {
	cfg Config
	rng *rand.Rand
	w   *World

	ixpPool   *netaddr.Allocator
	asPool    *netaddr.Allocator
	asAlloc   map[ASN]*netaddr.Allocator
	ixpAllocs map[IXPID]*netaddr.Allocator

	facsByMetro map[geo.MetroID][]FacilityID
	routerAt    map[routerKey]RouterID
	linkSeen    map[linkKey]bool
	memberDone  map[memberKey]bool
	peersM      map[ASN]map[ASN]bool // symmetric peer relationships
	providersM  map[ASN]map[ASN]bool // providersM[cust][prov]

	// Incremental views of memberDone / Memberships kept so the private-
	// link passes stay near-linear at Large scale. ixpsOfAS mirrors the
	// memberDone key set per AS; memberRouter tracks the router of the
	// *latest* membership per (AS, IXP), matching the scan order the
	// tether pass historically used.
	ixpsOfAS     map[ASN][]IXPID
	memberRouter map[memberKey]RouterID

	metroWeights []float64
}

func (b *builder) genMetros() {
	n := b.cfg.NumMetros
	for i := 0; i < n; i++ {
		s := metroSeeds[i]
		m := &geo.Metro{
			ID:      geo.MetroID(i),
			Name:    s.name,
			Country: s.country,
			Region:  s.region,
			Center:  geo.Coord{Lat: s.lat, Lon: s.lon},
			Aliases: s.aliases,
		}
		b.w.Metros = append(b.w.Metros, m)
		b.w.airports[m.ID] = s.airport
		b.metroWeights = append(b.metroWeights, s.weight)
	}
	// Satellite markets for the internet-scale profile: each orbits an
	// embedded hub (round-robin, so the heaviest markets sprout rings
	// first) at least ~1.5 degrees away — far enough that the registry
	// normaliser keeps it a distinct metro cluster.
	for i := 0; i < b.cfg.SyntheticMetros; i++ {
		hub := i % n
		ring := 1 + i/n
		s := metroSeeds[hub]
		dLat := (b.rng.Float64()*2 - 1) * 1.5
		dLon := (b.rng.Float64()*2 - 1) * 1.5
		if dLat >= 0 {
			dLat += 1.5
		} else {
			dLat -= 1.5
		}
		lat := s.lat + dLat
		if lat > 85 {
			lat = 85
		}
		if lat < -85 {
			lat = -85
		}
		m := &geo.Metro{
			ID:      geo.MetroID(len(b.w.Metros)),
			Name:    fmt.Sprintf("%s Edge %d", s.name, ring),
			Country: s.country,
			Region:  s.region,
			Center:  geo.Coord{Lat: lat, Lon: s.lon + dLon},
		}
		b.w.Metros = append(b.w.Metros, m)
		b.w.airports[m.ID] = syntheticAirport(i)
		b.metroWeights = append(b.metroWeights, s.weight*(0.08+0.06*b.rng.Float64()))
	}
}

// weightedMetro picks a metro index proportional to infrastructure weight,
// optionally restricted to one region (pass -1 for any).
func (b *builder) weightedMetro(region geo.Region) geo.MetroID {
	total := 0.0
	for i, w := range b.metroWeights {
		if region >= 0 && b.w.Metros[i].Region != region {
			continue
		}
		total += w
	}
	if total == 0 {
		return 0
	}
	x := b.rng.Float64() * total
	for i, w := range b.metroWeights {
		if region >= 0 && b.w.Metros[i].Region != region {
			continue
		}
		x -= w
		if x <= 0 {
			return geo.MetroID(i)
		}
	}
	return geo.MetroID(len(b.metroWeights) - 1)
}

// jitterCoord displaces a metro-centre coordinate by up to ~5km so that
// facilities in one metro do not coincide exactly.
func (b *builder) jitterCoord(c geo.Coord) geo.Coord {
	out := geo.Coord{
		Lat: c.Lat + (b.rng.Float64()-0.5)*0.09,
		Lon: c.Lon + (b.rng.Float64()-0.5)*0.09,
	}
	if out.Lat > 90 {
		out.Lat = 90
	}
	if out.Lat < -90 {
		out.Lat = -90
	}
	return out
}

func (b *builder) genFacilities() {
	sisterGroup := 0
	for mi, m := range b.w.Metros {
		weight := b.metroWeights[mi]
		n := int(weight*b.cfg.FacilityDensity + 0.5)
		// Mild jitter so same-weight metros differ.
		if n > 2 {
			n += b.rng.Intn(3) - 1
		}
		if n < 1 {
			n = 1
		}
		// Per-operator counters within this metro for sister groups.
		opCount := make(map[string][]FacilityID)
		for i := 0; i < n; i++ {
			op := colocationOperators[b.rng.Intn(len(colocationOperators))]
			cityName := m.Name
			if len(m.Aliases) > 0 && b.rng.Float64() < 0.3 {
				cityName = m.Aliases[b.rng.Intn(len(m.Aliases))]
			}
			f := &Facility{
				ID:             FacilityID(len(b.w.Facilities)),
				Name:           fmt.Sprintf("%s %s %d", op, m.Name, len(opCount[op])+1),
				Operator:       op,
				Metro:          m.ID,
				Coord:          b.jitterCoord(m.Center),
				CityName:       cityName,
				CarrierNeutral: b.rng.Float64() < 0.9,
			}
			b.w.Facilities = append(b.w.Facilities, f)
			b.facsByMetro[m.ID] = append(b.facsByMetro[m.ID], f.ID)
			opCount[op] = append(opCount[op], f.ID)
		}
		// Same-operator facilities in a metro are interconnected sisters.
		// Assign group numbers in sorted operator order: the numbering
		// consumes sisterGroup, so map order here would make the generated
		// world differ between runs of the same seed.
		ops := make([]string, 0, len(opCount))
		for op := range opCount {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			ids := opCount[op]
			if len(ids) > 1 {
				sisterGroup++
				for _, id := range ids {
					b.w.Facilities[id].SisterGroup = sisterGroup
				}
			}
		}
	}
}

func (b *builder) genIXPs() {
	type slot struct {
		metro geo.MetroID
		rank  int // 0 = the metro's main exchange
	}
	var slots []slot
	seen := make(map[geo.MetroID]int)
	// Big metros host their flagship exchange first, then extra exchanges
	// are spread by weight.
	order := make([]int, len(b.w.Metros))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return b.metroWeights[order[i]] > b.metroWeights[order[j]]
	})
	// Flagship exchanges go to the heaviest markets (about 60% of the
	// budget); the rest concentrate in big hubs — London, Frankfurt and
	// Amsterdam host several exchanges each, smaller markets none. The
	// cubed weights steer extras to the top metros, giving the cross-IXP
	// facilities behind §5's multi-IXP routers.
	flagships := b.cfg.NumIXPs * 3 / 5
	if flagships > len(order) {
		flagships = len(order)
	}
	for len(slots) < flagships {
		m := geo.MetroID(order[len(slots)])
		slots = append(slots, slot{m, seen[m]})
		seen[m]++
	}
	cubed := make([]float64, len(b.metroWeights))
	total := 0.0
	for i, w := range b.metroWeights {
		cubed[i] = w * w * w
		total += cubed[i]
	}
	for len(slots) < b.cfg.NumIXPs {
		x := b.rng.Float64() * total
		m := geo.MetroID(len(cubed) - 1)
		for i, w := range cubed {
			x -= w
			if x <= 0 {
				m = geo.MetroID(i)
				break
			}
		}
		slots = append(slots, slot{m, seen[m]})
		seen[m]++
	}
	for i, s := range slots {
		b.addIXP(s.metro, s.rank, false)
		_ = i
	}
	for i := 0; i < b.cfg.InactiveIXPs; i++ {
		b.addIXP(b.weightedMetro(-1), 100+i, true)
	}
}

func (b *builder) addIXP(metro geo.MetroID, rank int, inactive bool) {
	name := fmt.Sprintf("%s-IX", b.w.airports[metro])
	if rank > 0 {
		name = fmt.Sprintf("%s-IX%d", b.w.airports[metro], rank+1)
	}
	prefix, err := b.ixpPool.AllocPrefix(22)
	if err != nil {
		panic("world: IXP address pool exhausted: " + err.Error())
	}
	ix := &IXP{
		ID:          IXPID(len(b.w.IXPs)),
		Name:        name,
		Operator:    name + " Operator",
		Metro:       metro,
		Prefix:      prefix,
		RouteServer: b.rng.Float64() < 0.85,
		Inactive:    inactive,
	}
	// Pick the facility spread. Flagship exchanges in heavy metros span
	// many facilities (DE-CIX Frankfurt spans 18, §3.1.2).
	metroFacs := b.facsByMetro[metro]
	spread := 1
	if !inactive {
		w := b.metroWeights[metro]
		maxSpread := len(metroFacs)
		want := 1 + b.rng.Intn(2)
		if rank == 0 {
			want = 1 + int(w*float64(b.cfg.FacilityDensity)*0.8)
		}
		if want > maxSpread {
			want = maxSpread
		}
		spread = want
		if spread < 1 {
			spread = 1
		}
	}
	// Secondary exchanges in a metro colocate with the facilities the
	// flagship already serves (carrier hotels host several IXPs), which
	// is what lets one router reach multiple exchanges (§5: 11.9% of
	// public-peering routers).
	hosted := make(map[FacilityID]int)
	var hub FacilityID = FacilityID(None)
	for _, other := range b.w.IXPs {
		for _, f := range other.Facilities {
			hosted[f]++
		}
		// The metro's carrier hotel: the building with the flagship
		// exchange's core switch. Later exchanges in the metro anchor
		// there too (Telehouse-style), creating the cross-IXP
		// facilities behind §5's multi-IXP routers.
		if other.Metro == metro && len(other.Facilities) > 0 && hub == FacilityID(None) {
			hub = other.Facilities[0]
		}
	}
	order := append([]FacilityID(nil), metroFacs...)
	perm := b.rng.Perm(len(order))
	for i, j := range perm {
		order[i] = metroFacs[j]
	}
	if rank > 0 {
		sort.SliceStable(order, func(i, j int) bool {
			hi, hj := hosted[order[i]], hosted[order[j]]
			if (order[i] == hub) != (order[j] == hub) {
				return order[i] == hub
			}
			return hi > hj
		})
	}
	for i := 0; i < spread; i++ {
		ix.Facilities = append(ix.Facilities, order[i])
	}
	sort.Slice(ix.Facilities, func(i, j int) bool { return ix.Facilities[i] < ix.Facilities[j] })

	// Switch fabric: core in the first facility; every facility gets an
	// access switch; with ≥5 facilities, access switches cluster under
	// backhaul switches (Figure 6 topology).
	addSwitch := func(role SwitchRole, fac FacilityID, parent SwitchID) SwitchID {
		s := &Switch{
			ID:       SwitchID(len(b.w.Switches)),
			IXP:      ix.ID,
			Role:     role,
			Facility: fac,
			Parent:   parent,
		}
		b.w.Switches = append(b.w.Switches, s)
		ix.Switches = append(ix.Switches, s.ID)
		return s.ID
	}
	core := addSwitch(CoreSwitch, ix.Facilities[0], None)
	ix.Core = core
	if len(ix.Facilities) >= 5 {
		// Cluster facilities into backhaul groups of 2..4.
		i := 0
		for i < len(ix.Facilities) {
			size := 2 + b.rng.Intn(3)
			if i+size > len(ix.Facilities) {
				size = len(ix.Facilities) - i
			}
			bh := addSwitch(BackhaulSwitch, ix.Facilities[i], core)
			for j := i; j < i+size; j++ {
				addSwitch(AccessSwitch, ix.Facilities[j], bh)
			}
			i += size
		}
	} else {
		for _, f := range ix.Facilities {
			addSwitch(AccessSwitch, f, core)
		}
	}
	b.w.IXPs = append(b.w.IXPs, ix)
}

// accessSwitchAt returns the IXP's access switch in a facility, or None.
func (b *builder) accessSwitchAt(ix *IXP, fac FacilityID) SwitchID {
	for _, sid := range ix.Switches {
		s := b.w.Switches[sid]
		if s.Role == AccessSwitch && s.Facility == fac {
			return sid
		}
	}
	return None
}
