// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus substrate micro-benchmarks and the ablation benches
// DESIGN.md calls out. Figures are emitted as benchmark metrics
// (resolved_frac, accuracy_pct, ...) so `go test -bench=. -benchmem`
// doubles as the reproduction harness; cmd/experiments prints the same
// data as paper-style tables.
package facilitymap

import (
	"sync"
	"testing"
	"time"

	"facilitymap/internal/alias"
	"facilitymap/internal/bgp"
	"facilitymap/internal/cfs"
	"facilitymap/internal/experiments"
	"facilitymap/internal/netaddr"
	"facilitymap/internal/platform"
	"facilitymap/internal/registry"
	"facilitymap/internal/remote"
	"facilitymap/internal/world"
)

var (
	defaultEnvOnce sync.Once
	defaultEnv     *experiments.Env

	smallEnvOnce sync.Once
	smallEnv     *experiments.Env

	mainRunOnce sync.Once
	mainRun     *cfs.Result
)

func benchEnv() *experiments.Env {
	defaultEnvOnce.Do(func() { defaultEnv = experiments.NewEnv(world.Default(), 42) })
	return defaultEnv
}

func benchSmallEnv() *experiments.Env {
	smallEnvOnce.Do(func() { smallEnv = experiments.NewEnv(world.Small(), 42) })
	return smallEnv
}

// benchMainRun is the shared all-platform CFS run over the default world
// (the §5 campaign) reused by the figure benches that analyse a result.
func benchMainRun() (*experiments.Env, *cfs.Result) {
	e := benchEnv()
	mainRunOnce.Do(func() { mainRun = e.RunCFS(cfs.DefaultConfig()) })
	return e, mainRun
}

// fastCFS keeps sweep benches affordable.
func fastCFS() cfs.Config {
	cfg := cfs.DefaultConfig()
	cfg.MaxIterations = 25
	cfg.FollowUpBudget = 150
	cfg.AliasRounds = []int{1, 5, 15}
	return cfg
}

// ---- substrate micro-benchmarks ----------------------------------------

func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := world.Generate(world.Default())
		if len(w.Routers) == 0 {
			b.Fatal("empty world")
		}
	}
}

func BenchmarkBGPCompute(b *testing.B) {
	w := world.Generate(world.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgp.Compute(w)
	}
}

func BenchmarkTraceroute(b *testing.B) {
	e := benchEnv()
	src := e.W.ASes[len(e.W.ASes)-1].Routers[0]
	dst := e.W.Interfaces[e.W.Routers[e.W.ASes[0].Routers[0]].Core()].IP
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Engine.Traceroute(src, dst)
	}
}

func BenchmarkLongestPrefixMatch(b *testing.B) {
	e := benchEnv()
	ips := make([]netaddr.IP, 0, 1024)
	for i, ifc := range e.W.Interfaces {
		if i == 1024 {
			break
		}
		ips = append(ips, ifc.IP)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.IPASN.Lookup(ips[i%len(ips)])
	}
}

// ---- Table 1 ------------------------------------------------------------

func BenchmarkTable1Platforms(b *testing.B) {
	e := benchEnv()
	var r *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table1(e)
	}
	b.ReportMetric(float64(r.Total.VPs), "vantage_points")
	b.ReportMetric(float64(r.Total.ASNs), "asns")
}

// ---- Figure 2 -----------------------------------------------------------

func BenchmarkFigure2RegistryCompleteness(b *testing.B) {
	e := benchEnv()
	var r *experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2(e)
	}
	b.ReportMetric(float64(r.ASesChecked), "ases_checked")
	b.ReportMetric(float64(r.MissingLinks), "missing_links")
}

// ---- Figure 3 -----------------------------------------------------------

func BenchmarkFigure3MetroFacilities(b *testing.B) {
	e := benchEnv()
	var r *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3(e, 10)
	}
	b.ReportMetric(float64(len(r.Rows)), "metros_over_threshold")
	b.ReportMetric(float64(r.TotalFacilities), "facilities")
}

// ---- Figure 7 -----------------------------------------------------------

func BenchmarkFigure7Convergence(b *testing.B) {
	e := benchSmallEnv()
	var r *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure7(e, fastCFS())
	}
	all := r.Curves[0].Fraction
	b.ReportMetric(100*all[len(all)-1], "resolved_pct_all")
	b.ReportMetric(100*r.DNSGeolocated, "dns_baseline_pct")
}

// ---- Figure 8 -----------------------------------------------------------

func BenchmarkFigure8Knockout(b *testing.B) {
	e := benchSmallEnv()
	n := len(e.DB.Facilities)
	var r *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure8(e, fastCFS(), []int{0, n / 4, n / 2}, 2, 99)
	}
	last := r.Points[len(r.Points)-1]
	b.ReportMetric(100*last.UnresolvedFrac, "unresolved_pct_at_half")
	b.ReportMetric(100*last.ChangedFrac, "changed_pct_at_half")
}

// ---- Figure 9 -----------------------------------------------------------

func BenchmarkFigure9Validation(b *testing.B) {
	e, res := benchMainRun()
	var r *experiments.Figure9Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.Figure9(e, res)
	}
	b.ReportMetric(100*r.Overall.Frac(), "accuracy_pct")
	b.ReportMetric(float64(r.Overall.Total), "validated_interfaces")
}

// ---- Figure 10 ----------------------------------------------------------

func BenchmarkFigure10PeeringMix(b *testing.B) {
	e, res := benchMainRun()
	var r *experiments.Figure10Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.Figure10(e, res)
	}
	total := 0
	for _, asn := range r.Targets {
		total += r.Mix[asn][experiments.RegionAll].Total()
	}
	b.ReportMetric(float64(total), "target_interfaces")
}

// ---- §5 headline ----------------------------------------------------------

func BenchmarkHeadline(b *testing.B) {
	e, res := benchMainRun()
	var h *experiments.HeadlineResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h = experiments.Headline(e, res)
	}
	b.ReportMetric(100*h.ResolvedFrac, "resolved_pct")
	b.ReportMetric(100*h.MultiRoleFrac, "multi_role_pct")
}

// ---- §4.4 proximity heuristic ---------------------------------------------

func BenchmarkProximityHeuristic(b *testing.B) {
	e := benchEnv()
	var r *experiments.ProximityResult
	for i := 0; i < b.N; i++ {
		r = experiments.Proximity(e)
	}
	b.ReportMetric(100*r.ExactFrac(), "exact_pct")
	b.ReportMetric(float64(r.TestPairs), "test_pairs")
}

// ---- full pipeline ----------------------------------------------------------

func BenchmarkCFSFullRun(b *testing.B) {
	e := benchEnv()
	var res *cfs.Result
	for i := 0; i < b.N; i++ {
		res = e.RunCFS(cfs.DefaultConfig())
	}
	b.ReportMetric(100*res.ResolvedFraction(), "resolved_pct")
	b.ReportMetric(float64(len(res.Interfaces)), "interfaces")
}

// ---- parallel execution -----------------------------------------------------

// benchCFSWorkers runs the full default-world pipeline with a fixed
// worker count. Every count produces the identical result (see
// internal/cfs TestParallelMatchesSerial); the benches measure only the
// wall-clock effect of fanning the pure phases out.
func benchCFSWorkers(b *testing.B, workers int) {
	e := benchEnv()
	cfg := cfs.DefaultConfig()
	cfg.Workers = workers
	var res *cfs.Result
	for i := 0; i < b.N; i++ {
		res = e.RunCFS(cfg)
	}
	b.ReportMetric(100*res.ResolvedFraction(), "resolved_pct")
}

func BenchmarkCFSParallelWorkers1(b *testing.B)   { benchCFSWorkers(b, 1) }
func BenchmarkCFSParallelWorkers2(b *testing.B)   { benchCFSWorkers(b, 2) }
func BenchmarkCFSParallelWorkers4(b *testing.B)   { benchCFSWorkers(b, 4) }
func BenchmarkCFSParallelWorkersMax(b *testing.B) { benchCFSWorkers(b, 0) }

// BenchmarkCFSParallelSpeedup times a serial (Workers=1) and a
// parallel (Workers=GOMAXPROCS) run back to back and reports the ratio
// as speedup_x.
func BenchmarkCFSParallelSpeedup(b *testing.B) {
	e := benchEnv()
	serial := cfs.DefaultConfig()
	serial.MaxIterations = 10
	serial.FollowUpBudget = 200
	serial.AliasRounds = []int{1, 5}
	parallel := serial
	serial.Workers = 1
	parallel.Workers = 0
	var serialNS, parallelNS int64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		e.RunCFS(serial)
		t1 := time.Now()
		e.RunCFS(parallel)
		t2 := time.Now()
		serialNS += t1.Sub(t0).Nanoseconds()
		parallelNS += t2.Sub(t1).Nanoseconds()
	}
	if parallelNS > 0 {
		b.ReportMetric(float64(serialNS)/float64(parallelNS), "speedup_x")
	}
}

// ---- worklist engine --------------------------------------------------------

// trimmedCFS is the trimmed default-world configuration the engine
// benches share (mirrors BenchmarkCFSParallelSpeedup's operating
// point).
func trimmedCFS(engine string, workers int) cfs.Config {
	cfg := cfs.DefaultConfig()
	cfg.MaxIterations = 10
	cfg.FollowUpBudget = 200
	cfg.AliasRounds = []int{1, 5}
	cfg.Engine = engine
	cfg.Workers = workers
	return cfg
}

func sumWork(res *cfs.Result) (dirty, recomputed float64) {
	for _, h := range res.History {
		dirty += float64(h.DirtyAdjs)
		recomputed += float64(h.Recomputed)
	}
	return dirty, recomputed
}

// benchCFSEngine runs the trimmed default-world pipeline under one
// engine and reports the per-run work counters alongside the timing,
// so `go test -bench CFSWorklist` shows the dirty-set win directly.
func benchCFSEngine(b *testing.B, engine string, workers int) {
	e := benchEnv()
	cfg := trimmedCFS(engine, workers)
	var res *cfs.Result
	for i := 0; i < b.N; i++ {
		res = e.RunCFS(cfg)
	}
	dirty, recomputed := sumWork(res)
	b.ReportMetric(dirty, "dirty_adjs")
	b.ReportMetric(recomputed, "recomputed")
	b.ReportMetric(100*res.ResolvedFraction(), "resolved_pct")
}

func BenchmarkCFSWorklistWorkers1(b *testing.B)   { benchCFSEngine(b, cfs.EngineWorklist, 1) }
func BenchmarkCFSWorklistWorkersMax(b *testing.B) { benchCFSEngine(b, cfs.EngineWorklist, 0) }
func BenchmarkCFSRescanWorkers1(b *testing.B)     { benchCFSEngine(b, cfs.EngineRescan, 1) }
func BenchmarkCFSRescanWorkersMax(b *testing.B)   { benchCFSEngine(b, cfs.EngineRescan, 0) }

// BenchmarkCFSWorklistSpeedup times a rescan and a worklist run back to
// back at Workers=1 (pure scheduling effect, no pool) and reports the
// wall-clock ratio plus both engines' recomputed-proposal totals. The
// differential test guarantees the two runs return identical results.
func BenchmarkCFSWorklistSpeedup(b *testing.B) {
	e := benchEnv()
	rescan := trimmedCFS(cfs.EngineRescan, 1)
	worklist := trimmedCFS(cfs.EngineWorklist, 1)
	var rescanNS, worklistNS int64
	var rescanRes, worklistRes *cfs.Result
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rescanRes = e.RunCFS(rescan)
		t1 := time.Now()
		worklistRes = e.RunCFS(worklist)
		t2 := time.Now()
		rescanNS += t1.Sub(t0).Nanoseconds()
		worklistNS += t2.Sub(t1).Nanoseconds()
	}
	if worklistNS > 0 {
		b.ReportMetric(float64(rescanNS)/float64(worklistNS), "speedup_x")
	}
	_, rr := sumWork(rescanRes)
	_, wr := sumWork(worklistRes)
	b.ReportMetric(rr, "rescan_recomputed")
	b.ReportMetric(wr, "worklist_recomputed")
}

// BenchmarkMergeParallel exercises the worker-pool incremental merge
// over three runs of the small world.
func BenchmarkMergeParallel(b *testing.B) {
	e := benchSmallEnv()
	results := []*cfs.Result{
		e.RunCFS(fastCFS()), e.RunCFS(fastCFS()), e.RunCFS(fastCFS()),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := cfs.Merge(results...)
		if len(out.Interfaces) == 0 {
			b.Fatal("empty merge")
		}
	}
}

// ---- ablations (design choices from DESIGN.md) ------------------------------

func benchAblation(b *testing.B, mutate func(*cfs.Config)) {
	e := benchSmallEnv()
	cfg := fastCFS()
	mutate(&cfg)
	var res *cfs.Result
	for i := 0; i < b.N; i++ {
		res = e.RunCFS(cfg)
	}
	b.ReportMetric(100*res.ResolvedFraction(), "resolved_pct")
}

func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b, func(*cfs.Config) {})
}

func BenchmarkAblationNoAliasResolution(b *testing.B) {
	benchAblation(b, func(c *cfs.Config) { c.UseAliasResolution = false })
}

func BenchmarkAblationNoTargetedTraceroutes(b *testing.B) {
	benchAblation(b, func(c *cfs.Config) { c.UseTargeted = false })
}

func BenchmarkAblationNoRemoteDetection(b *testing.B) {
	benchAblation(b, func(c *cfs.Config) { c.UseRemoteDetection = false })
}

func BenchmarkAblationNoProximity(b *testing.B) {
	benchAblation(b, func(c *cfs.Config) { c.UseProximity = false })
}

func BenchmarkAblationAtlasOnly(b *testing.B) {
	benchAblation(b, func(c *cfs.Config) { c.Platforms = []platform.Kind{platform.Atlas} })
}

func BenchmarkAblationLGOnly(b *testing.B) {
	benchAblation(b, func(c *cfs.Config) { c.Platforms = []platform.Kind{platform.LookingGlass} })
}

func BenchmarkAliasResolution(b *testing.B) {
	e := benchSmallEnv()
	var ips []netaddr.IP
	for _, ifc := range e.W.Interfaces {
		ips = append(ips, ifc.IP)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prober := alias.NewProber(e.W, int64(i)+100)
		sets := alias.Resolve(prober, ips)
		if sets.NonTrivial() == 0 {
			b.Fatal("no alias sets resolved")
		}
	}
}

func BenchmarkRemotePeeringDetection(b *testing.B) {
	e := benchSmallEnv()
	det := remote.NewDetector(e.Svc, e.DB)
	var ports []netaddr.IP
	var ixps []world.IXPID
	for _, m := range e.W.Memberships {
		ports = append(ports, e.W.Interfaces[m.Port].IP)
		ixps = append(ixps, m.IXP)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ports)
		det.IsRemote(ports[j], ixps[j])
	}
}

func BenchmarkMetroNormalisation(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		// Collect includes the §3.1.1 normalisation pass.
		db := registry.Collect(e.W, registry.DefaultConfig())
		if db.Clusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}
