// Command experiments regenerates every table and figure of the paper's
// evaluation over a synthetic world and prints them as text tables.
//
// Usage:
//
//	experiments [-world small|default|paper] [-seed N] [-only LIST]
//	            [-iterations N] [-repeats N]
//
// -only selects a comma-separated subset of:
// table1,fig2,fig3,fig7,fig8,fig9,fig10,headline,proximity,ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"facilitymap/internal/cfs"
	"facilitymap/internal/experiments"
	"facilitymap/internal/world"
)

func main() {
	var (
		worldFlag  = flag.String("world", "default", "world profile: small, default or paper")
		seed       = flag.Int64("seed", 42, "simulation seed")
		only       = flag.String("only", "", "comma-separated experiment subset")
		iterations = flag.Int("iterations", 100, "CFS iteration cap")
		repeats    = flag.Int("repeats", 3, "Figure 8 repeats per removal level")
	)
	flag.Parse()

	var wcfg world.Config
	switch *worldFlag {
	case "small":
		wcfg = world.Small()
	case "default":
		wcfg = world.Default()
	case "paper":
		wcfg = world.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown world profile %q\n", *worldFlag)
		os.Exit(2)
	}
	wcfg.Seed = *seed

	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, n := range strings.Split(*only, ",") {
			if strings.TrimSpace(n) == name {
				return true
			}
		}
		return false
	}

	start := time.Now()
	fmt.Printf("# Building %s world (seed %d)...\n", *worldFlag, *seed)
	env := experiments.NewEnv(wcfg, *seed)
	fmt.Printf("# world: %d metros, %d facilities, %d IXPs, %d ASes, %d routers, %d links (%.1fs)\n\n",
		len(env.W.Metros), len(env.W.Facilities), len(env.W.IXPs), len(env.W.ASes),
		len(env.W.Routers), len(env.W.Links), time.Since(start).Seconds())

	cfg := cfs.DefaultConfig()
	cfg.MaxIterations = *iterations

	if want("table1") {
		fmt.Println(experiments.Table1(env).Render())
	}
	if want("fig2") {
		fmt.Println(experiments.Figure2(env).Render())
	}
	if want("fig3") {
		threshold := 10
		if *worldFlag == "small" {
			threshold = 2
		}
		fmt.Println(experiments.Figure3(env, threshold).Render())
	}

	var mainRun *cfs.Result
	runMain := func() *cfs.Result {
		if mainRun == nil {
			fmt.Println("# Running CFS (all platforms)...")
			t0 := time.Now()
			mainRun = env.RunCFS(cfg)
			fmt.Printf("# CFS finished in %.1fs: %d interfaces, %d resolved\n\n",
				time.Since(t0).Seconds(), len(mainRun.Interfaces), mainRun.Resolved())
		}
		return mainRun
	}

	if want("fig7") {
		fmt.Println("# Running Figure 7 (three CFS configurations)...")
		fmt.Println(experiments.Figure7(env, cfg).Render())
	}
	if want("headline") {
		fmt.Println(experiments.Headline(env, runMain()).Render())
	}
	if want("fig9") {
		fmt.Println(experiments.Figure9(env, runMain()).Render())
	}
	if want("fig10") {
		fmt.Println(experiments.Figure10(env, runMain()).Render())
	}
	if want("proximity") {
		fmt.Println(experiments.Proximity(env).Render())
	}
	if want("ablations") {
		fmt.Println("# Running ablation suite (7 CFS configurations)...")
		abCfg := cfg
		if abCfg.MaxIterations > 40 {
			abCfg.MaxIterations = 40
		}
		fmt.Println(experiments.Ablations(env, abCfg).Render())
	}
	if want("fig8") {
		n := len(env.DB.Facilities)
		removals := []int{0, n / 8, n / 4, 3 * n / 8, n / 2, 5 * n / 8, 3 * n / 4}
		fmt.Printf("# Running Figure 8 knockout sweep (%d levels x %d repeats)...\n", len(removals), *repeats)
		f8cfg := cfg
		if f8cfg.MaxIterations > 40 {
			f8cfg.MaxIterations = 40 // sweep cost control
		}
		fmt.Println(experiments.Figure8(env, f8cfg, removals, *repeats, *seed+1).Render())
	}
	fmt.Printf("# total wall time %.1fs, %d traceroutes, simulated platform time %s\n",
		time.Since(start).Seconds(), env.Svc.Traceroutes, env.Svc.SimulatedCost)
}
