// Command cfsd is the continuous mapping daemon: it boots a
// facilitymap.System, runs the initial convergence, then serves the
// epoch-cached query API while folding in delta batches as they arrive.
//
// Usage:
//
//	cfsd [-addr :8080] [-profile small|medium|default|paper|large] [-seed N]
//	     [-iterations N] [-workers N] [-engine worklist|rescan] [-shards N]
//	     [-follow churn.jsonl] [-poll 1s] [-cache N] [-timeout 5s] [-inflight N]
//
// Endpoints:
//
//	GET  /v1/interface/{ip}     one interface's inference
//	GET  /v1/interconnections?a=ASN&b=ASN
//	                            every classified link between an AS pair
//	GET  /v1/snapshot           the epoch-stamped mapping digest
//	POST /v1/interfaces:batch   a JSON array of addresses; one result per
//	                            address, all from one snapshot
//	GET  /v1/interfaces/stream  every inference as NDJSON, one record per
//	                            line (epoch in X-CFS-Epoch)
//	GET  /metrics               the obs snapshot (?format=text for the table)
//	POST /v1/deltas             a JSONL delta batch (worldgen -churn format);
//	                            answers {"epoch":N,"applied":K}
//
// Every query is answered from the current immutable snapshot and
// stamped with its epoch (body and X-CFS-Epoch header); responses are
// cached per epoch and the cache dies wholesale at each snapshot swap.
// The writer loop materializes each snapshot's serving tables at the
// swap, so queries are table reads — never snapshot-wide builds.
// Writes — POSTed batches and, with -follow, records tailed from a
// growing churn log — are serialized through one writer goroutine.
//
// On SIGINT/SIGTERM the daemon drains: the listener stops accepting,
// in-flight requests finish within the shutdown grace, queued delta
// batches are applied, and only then does the process exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"facilitymap"
	"facilitymap/internal/obs"
	"facilitymap/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		profile    = flag.String("profile", "small", "world profile: small, medium, default, paper or large")
		seed       = flag.Int64("seed", 42, "simulation seed")
		iterations = flag.Int("iterations", 100, "CFS iteration cap")
		workers    = flag.Int("workers", 0, "worker goroutines for the parallel search phases (0 = one per CPU)")
		engine     = flag.String("engine", "", "CFS iteration core: worklist (default) or rescan; deltas need worklist")
		shards     = flag.Int("shards", 0, "metro-cluster shards for the worklist engine (0 = unsharded)")
		follow     = flag.String("follow", "", "tail this JSONL churn log (see worldgen -churn -out) and apply new records")
		poll       = flag.Duration("poll", time.Second, "poll interval for -follow")
		batch      = flag.Int("batch", 256, "max records per epoch when applying a -follow tail")
		cacheSize  = flag.Int("cache", serve.DefaultCacheEntries, "epoch-cache entry bound (negative disables caching)")
		timeout    = flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request timeout")
		inflight   = flag.Int("inflight", serve.DefaultMaxInFlight, "max concurrently executing requests (excess get 503)")
		grace      = flag.Duration("grace", 10*time.Second, "shutdown grace for in-flight requests")
	)
	flag.Parse()

	sys, err := facilitymap.NewSystem(facilitymap.Config{
		Profile:       *profile,
		Seed:          *seed,
		MaxIterations: *iterations,
		Workers:       *workers,
		Engine:        *engine,
		Shards:        *shards,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "cfsd: converging %s world (seed %d)...\n", *profile, *seed)
	//cfslint:ignore noclock boot-timing for the startup log only; feeds a stderr line, never an inference
	start := time.Now()
	m := sys.MapInterconnections()
	fmt.Fprintf(os.Stderr, "cfsd: epoch 0 published in %v: %d interfaces, %d resolved\n",
		//cfslint:ignore noclock boot-timing for the startup log only; feeds a stderr line, never an inference
		time.Since(start).Round(time.Millisecond),
		len(m.Result().Interfaces), m.Result().Resolved())

	srv := serve.New(sys, serve.Options{
		RequestTimeout:     *timeout,
		MaxInFlight:        *inflight,
		CacheEntries:       *cacheSize,
		MaterializeWorkers: *workers,
		Obs:                obs.New(0),
	})

	// The writer loop owns every Apply; canceling writerCtx begins the
	// drain, and srv.Done() closes once queued batches have landed.
	writerCtx, stopWriter := context.WithCancel(context.Background())
	go srv.Run(writerCtx)

	if *follow != "" {
		fmt.Fprintf(os.Stderr, "cfsd: following %s (poll %v, batch %d)\n", *follow, *poll, *batch)
		go func() {
			if err := srv.Follow(writerCtx, *follow, *poll, *batch); err != nil &&
				!errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "cfsd: follow: %v\n", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "cfsd: serving on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "cfsd: %v — draining\n", s)
	}

	// Drain order matters: stop accepting and finish in-flight requests
	// first (a POST still executing can enqueue), then retire the
	// writer, which applies everything already accepted before exiting.
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cfsd: shutdown: %v\n", err)
	}
	stopWriter()
	<-srv.Done()
	if cur := sys.Current(); cur != nil {
		fmt.Fprintf(os.Stderr, "cfsd: drained at epoch %d\n", cur.Epoch())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cfsd:", err)
	os.Exit(1)
}
