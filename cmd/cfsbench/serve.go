package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"facilitymap"
	"facilitymap/internal/obs"
	"facilitymap/internal/serve"
)

// measureServe benchmarks the daemon's query path (-serve): one
// converged system, one fixed request mix — snapshot digests,
// interface lookups, AS-pair interconnection queries — played against
// two servers sharing that system. The cold server has its epoch cache
// disabled, so every query renders from the snapshot's materialized
// tables; the hot server is warmed first, so every timed query is a
// cache hit. The ratio is the value of the epoch cache in steady
// state, which -min-serve-speedup turns into a gate.
//
// The hot pass also reports allocations per query (runtime.MemStats
// deltas around the timed loop, gated by -max-hot-allocs), and two
// bulk shapes ride the same system: one POST /v1/interfaces:batch of N
// addresses against the per-request loop of the same N lookups
// (serve_batch_amortization_x, gated by -min-batch-amortization), and
// the GET /v1/interfaces/stream NDJSON dump timed per emitted record.
func measureServe(rep *report, profile string, seed int64, queries, runs int) error {
	sys, err := facilitymap.NewSystem(facilitymap.Config{Profile: profile, Seed: seed})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	m := sys.MapInterconnections()
	// Swap-time work happens here, as the daemon's writer loop would,
	// so both modes measure serving — never table construction.
	m.Materialize(0)
	reqs, ips := buildServeRequests(m, queries)
	if len(reqs) == 0 {
		return fmt.Errorf("serve: no query targets in the snapshot")
	}

	// Read-only traffic: neither server needs its writer loop. The
	// request timeout is disabled so the measurement sees the handler
	// path, not stdlib timer machinery; both modes skip it equally.
	cold := serve.New(sys, serve.Options{RequestTimeout: -1, CacheEntries: -1, Obs: obs.New(0)})
	hot := serve.New(sys, serve.Options{RequestTimeout: -1, Obs: obs.New(0)})

	coldNs, _, err := timeServe(cold.Handler(), reqs, runs)
	if err != nil {
		return fmt.Errorf("serve cold: %w", err)
	}
	hotNs, hotAllocs, err := timeServe(hot.Handler(), reqs, runs)
	if err != nil {
		return fmt.Errorf("serve hot: %w", err)
	}
	rep.ServeQueries = len(reqs)
	rep.ServeColdNsPerQuery = coldNs
	rep.ServeHotNsPerQuery = hotNs
	rep.ServeHotAllocsPerQuery = hotAllocs
	if hotNs > 0 {
		rep.ServeSpeedupX = float64(coldNs) / float64(hotNs)
	}

	// Batch amortization: the same N addresses as one POST body versus
	// N individual hot lookups. Both sides are steady-state (cached).
	loop := make([]*http.Request, len(ips))
	for i, ip := range ips {
		loop[i] = httptest.NewRequest("GET", "/v1/interface/"+ip, nil)
	}
	loopNs, _, err := timeServe(hot.Handler(), loop, runs)
	if err != nil {
		return fmt.Errorf("serve loop: %w", err)
	}
	batchNs, err := timeBatch(hot.Handler(), ips, runs)
	if err != nil {
		return fmt.Errorf("serve batch: %w", err)
	}
	rep.ServeBatchSize = len(ips)
	rep.ServeBatchNsPerQuery = batchNs
	if batchNs > 0 {
		rep.ServeBatchAmortizationX = float64(loopNs) / float64(batchNs)
	}

	streamNs, nIfs, err := timeStream(hot.Handler(), runs)
	if err != nil {
		return fmt.Errorf("serve stream: %w", err)
	}
	rep.ServeStreamInterfaces = nIfs
	rep.ServeStreamNsPerIf = streamNs
	return nil
}

// buildServeRequests assembles the fixed mix: one snapshot digest and
// roughly equal parts interface lookups and AS-pair queries, cycling
// through targets sampled from the mapping. Requests are pre-built and
// reused so the timed loops measure the server, not URL parsing. The
// sampled addresses are returned for the batch scenario.
func buildServeRequests(m *facilitymap.Mapping, n int) ([]*http.Request, []string) {
	infos := m.Interfaces()
	var ips []string
	step := len(infos)/64 + 1
	for i := 0; i < len(infos) && len(ips) < 64; i += step {
		ips = append(ips, infos[i].IP)
	}
	res := m.Result()
	var pairs [][2]int
	seen := map[[2]int]bool{}
	for _, l := range res.Links {
		far := l.FarAS
		if l.Public {
			far = 0
			if ir := res.Interfaces[l.FarPort]; ir != nil {
				far = ir.Owner
			}
		}
		if l.NearAS == 0 || far == 0 || far == l.NearAS {
			continue
		}
		a, b := int(l.NearAS), int(far)
		if a > b {
			a, b = b, a
		}
		p := [2]int{a, b}
		if !seen[p] {
			seen[p] = true
			pairs = append(pairs, p)
			if len(pairs) >= 64 {
				break
			}
		}
	}
	if len(ips) == 0 || len(pairs) == 0 {
		return nil, nil
	}
	if n < 4 {
		n = 4
	}
	out := make([]*http.Request, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, httptest.NewRequest("GET", "/v1/snapshot", nil))
		case 1, 3:
			out = append(out, httptest.NewRequest("GET", "/v1/interface/"+ips[i%len(ips)], nil))
		default:
			p := pairs[i%len(pairs)]
			out = append(out, httptest.NewRequest("GET",
				fmt.Sprintf("/v1/interconnections?a=%d&b=%d", p[0], p[1]), nil))
		}
	}
	return out, ips
}

// sink is a reusable alloc-free http.ResponseWriter: the recorder-per-
// request pattern would put several allocations of harness overhead
// inside every timed (and alloc-counted) query.
type sink struct {
	hdr  http.Header
	code int
	n    int64
}

func newSink() *sink                        { return &sink{hdr: make(http.Header, 4)} }
func (s *sink) Header() http.Header         { return s.hdr }
func (s *sink) WriteHeader(code int)        { s.code = code }
func (s *sink) Write(b []byte) (int, error) { s.n += int64(len(b)); return len(b), nil }

// timeServe plays the request mix through the handler: one untimed
// warmup pass (verifying statuses and filling the hot server's cache so
// both modes measure steady-state serving), then timed passes with the
// heap-allocation delta of the whole loop attributed per query.
func timeServe(h http.Handler, reqs []*http.Request, runs int) (nsPerQuery int64, allocsPerQuery float64, err error) {
	for _, r := range reqs {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			return 0, 0, fmt.Errorf("%s %s: status %d: %s",
				r.Method, r.URL, rec.Code, rec.Body.String())
		}
	}
	w := newSink()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < runs; i++ {
		for _, r := range reqs {
			h.ServeHTTP(w, r)
		}
	}
	total := time.Since(t0)
	runtime.ReadMemStats(&after)
	n := int64(runs * len(reqs))
	return total.Nanoseconds() / n, float64(after.Mallocs-before.Mallocs) / float64(n), nil
}

// batchIters spreads the one-request batch/stream scenarios over enough
// iterations that time.Now granularity stops mattering.
const batchIters = 16

// timeBatch times POST /v1/interfaces:batch with the sampled addresses,
// reporting nanoseconds per address in the batch. The body reader is
// rebuilt per iteration (it is consumed), so the measurement includes
// the decode the server actually pays per batch.
func timeBatch(h http.Handler, ips []string, runs int) (int64, error) {
	body, err := json.Marshal(ips)
	if err != nil {
		return 0, err
	}
	// One reusable request with a rewindable body: rebuilding the
	// request per iteration would charge harness setup, not the server,
	// against the batch.
	rd := bytes.NewReader(body)
	r := httptest.NewRequest("POST", "/v1/interfaces:batch", io.NopCloser(rd))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		return 0, fmt.Errorf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	w := newSink()
	iters := runs * batchIters
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		rd.Seek(0, io.SeekStart)
		h.ServeHTTP(w, r)
	}
	total := time.Since(t0)
	return total.Nanoseconds() / int64(iters*len(ips)), nil
}

// timeStream times the GET /v1/interfaces/stream NDJSON dump, reporting
// nanoseconds per emitted record and the record count.
func timeStream(h http.Handler, runs int) (nsPerIf int64, interfaces int, err error) {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/interfaces/stream", nil))
	if rec.Code != http.StatusOK {
		return 0, 0, fmt.Errorf("stream status %d: %s", rec.Code, rec.Body.String())
	}
	interfaces = bytes.Count(rec.Body.Bytes(), []byte("\n"))
	if interfaces == 0 {
		return 0, 0, fmt.Errorf("stream emitted no records")
	}
	w := newSink()
	r := httptest.NewRequest("GET", "/v1/interfaces/stream", nil)
	iters := runs * batchIters
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		h.ServeHTTP(w, r)
	}
	total := time.Since(t0)
	return total.Nanoseconds() / int64(iters*interfaces), interfaces, nil
}
