package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"facilitymap"
	"facilitymap/internal/obs"
	"facilitymap/internal/serve"
)

// measureServe benchmarks the daemon's query path (-serve): one
// converged system, one fixed request mix — snapshot digests,
// interface lookups, AS-pair interconnection queries — played against
// two servers sharing that system. The cold server has its epoch cache
// disabled, so every query renders from the immutable snapshot; the
// hot server is warmed first, so every timed query is a cache hit.
// The ratio is the value of the epoch cache in steady state, which
// -min-serve-speedup turns into a gate.
func measureServe(rep *report, profile string, seed int64, queries, runs int) error {
	sys, err := facilitymap.NewSystem(facilitymap.Config{Profile: profile, Seed: seed})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	m := sys.MapInterconnections()
	reqs := buildServeRequests(m, queries)
	if len(reqs) == 0 {
		return fmt.Errorf("serve: no query targets in the snapshot")
	}

	// Read-only traffic: neither server needs its writer loop. The
	// request timeout is disabled so the measurement sees the handler
	// path, not stdlib timer machinery; both modes skip it equally.
	cold := serve.New(sys, serve.Options{RequestTimeout: -1, CacheEntries: -1, Obs: obs.New(0)})
	hot := serve.New(sys, serve.Options{RequestTimeout: -1, Obs: obs.New(0)})

	coldNs, err := timeServe(cold.Handler(), reqs, runs)
	if err != nil {
		return fmt.Errorf("serve cold: %w", err)
	}
	hotNs, err := timeServe(hot.Handler(), reqs, runs)
	if err != nil {
		return fmt.Errorf("serve hot: %w", err)
	}
	rep.ServeQueries = len(reqs)
	rep.ServeColdNsPerQuery = coldNs
	rep.ServeHotNsPerQuery = hotNs
	if hotNs > 0 {
		rep.ServeSpeedupX = float64(coldNs) / float64(hotNs)
	}
	return nil
}

// buildServeRequests assembles the fixed mix: one snapshot digest and
// roughly equal parts interface lookups and AS-pair queries, cycling
// through targets sampled from the mapping. Requests are pre-built and
// reused so the timed loops measure the server, not URL parsing.
func buildServeRequests(m *facilitymap.Mapping, n int) []*http.Request {
	infos := m.Interfaces()
	var ips []string
	step := len(infos)/64 + 1
	for i := 0; i < len(infos) && len(ips) < 64; i += step {
		ips = append(ips, infos[i].IP)
	}
	res := m.Result()
	var pairs [][2]int
	seen := map[[2]int]bool{}
	for _, l := range res.Links {
		far := l.FarAS
		if l.Public {
			far = 0
			if ir := res.Interfaces[l.FarPort]; ir != nil {
				far = ir.Owner
			}
		}
		if l.NearAS == 0 || far == 0 || far == l.NearAS {
			continue
		}
		a, b := int(l.NearAS), int(far)
		if a > b {
			a, b = b, a
		}
		p := [2]int{a, b}
		if !seen[p] {
			seen[p] = true
			pairs = append(pairs, p)
			if len(pairs) >= 64 {
				break
			}
		}
	}
	if len(ips) == 0 || len(pairs) == 0 {
		return nil
	}
	if n < 4 {
		n = 4
	}
	out := make([]*http.Request, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, httptest.NewRequest("GET", "/v1/snapshot", nil))
		case 1, 3:
			out = append(out, httptest.NewRequest("GET", "/v1/interface/"+ips[i%len(ips)], nil))
		default:
			p := pairs[i%len(pairs)]
			out = append(out, httptest.NewRequest("GET",
				fmt.Sprintf("/v1/interconnections?a=%d&b=%d", p[0], p[1]), nil))
		}
	}
	return out
}

// timeServe plays the request mix through the handler: one untimed
// warmup pass (verifying statuses, filling the hot server's cache and
// the snapshot's lazily built AS-pair index so both modes measure
// rendering, not index construction), then runs timed passes.
func timeServe(h http.Handler, reqs []*http.Request, runs int) (int64, error) {
	for _, r := range reqs {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		if rec.Code != http.StatusOK {
			return 0, fmt.Errorf("%s %s: status %d: %s",
				r.Method, r.URL, rec.Code, rec.Body.String())
		}
	}
	t0 := time.Now()
	for i := 0; i < runs; i++ {
		for _, r := range reqs {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
		}
	}
	total := time.Since(t0)
	return total.Nanoseconds() / int64(runs*len(reqs)), nil
}
