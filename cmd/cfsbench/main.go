// Command cfsbench benchmarks the CFS iteration cores and writes a
// machine-readable report (BENCH_cfs.json by default): wall time per
// run, probes issued, proposals recomputed, candidate-set narrowings,
// and the process's peak RSS. Each run rebuilds a fresh environment so
// the engines see bit-for-bit identical inputs; the tool fails if any
// two engines disagree on the resolved count.
//
// -shards N adds a third entry, "sharded": the worklist core under the
// metro-sharded converge/exchange scheduler with N shards. The report
// then also carries shard_speedup_x, the worklist-to-sharded wall-time
// ratio. -profile large benchmarks the internet-scale world under a
// tight iteration budget (worklist vs sharded only — a paper-literal
// full rescan is pointless at that scale); its report belongs in
// BENCH_cfs_large.json, separate from the small-world artifact CI
// gates on.
//
// Every engine is timed in both modes — observability off and on — and
// the ratio is reported as obs_overhead_x. Each engine gets one untimed
// warmup run per mode, and the timed runs interleave the two modes so
// slow drift (thermal throttling, background GC debt) lands on both
// equally rather than on whichever mode runs last. -max-overhead N
// turns the ratio into a gate: exit nonzero when any engine's
// enabled/disabled ratio exceeds N (0, the default, disables the
// gate). CI uses a generous bound purely as a smoke check that the
// disabled path stays free.
//
// -baseline FILE compares the fresh numbers against a previous report
// (typically the committed BENCH_cfs.json, read before it is
// overwritten): with -max-regress R, the run fails when the worklist
// engine's ns_per_op exceeds the baseline by more than the fraction R.
//
// -serve adds the daemon scenario: the query API's request mix (snapshot
// digests, interface lookups, AS-pair queries) against one converged,
// materialized system, measured cold (epoch cache disabled — every
// query renders from the snapshot's swap-time tables) and hot (cache
// warmed — every query is an epoch-keyed hit). serve_speedup_x is the
// cold/hot ratio and -min-serve-speedup gates it;
// serve_hot_allocs_per_query is the steady-state allocation cost gated
// by -max-hot-allocs. The same run times the bulk shapes: one
// /v1/interfaces:batch POST against the per-request loop of the same
// lookups (serve_batch_amortization_x, gated by -min-batch-amortization)
// and the /v1/interfaces/stream dump per emitted record
// (serve_stream_ns_per_if). With -baseline, serve_cold_ns_per_query is
// regression-gated alongside worklist ns_per_op.
//
// Usage:
//
//	cfsbench [-profile small|medium|default|paper|large] [-seed N] [-runs N]
//	         [-shards N] [-out FILE] [-max-overhead X] [-baseline FILE]
//	         [-max-regress R] [-incremental N] [-serve]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"facilitymap/internal/cfs"
	"facilitymap/internal/delta"
	"facilitymap/internal/experiments"
	"facilitymap/internal/obs"
	"facilitymap/internal/world"
)

// engineReport is one engine's measurements. ns_per_op is the mean
// wall time of a full CFS run (campaigns included, world generation
// excluded) with observability disabled; ns_per_op_observed is the
// same with metrics and tracing attached. allocs_per_op and
// bytes_per_op are the mean heap allocation count and volume of one
// unobserved run (runtime.MemStats deltas around the timed region).
type engineReport struct {
	Engine              string  `json:"engine"`
	NsPerOp             int64   `json:"ns_per_op"`
	NsPerOpObserved     int64   `json:"ns_per_op_observed"`
	ObsOverheadX        float64 `json:"obs_overhead_x"`
	AllocsPerOp         int64   `json:"allocs_per_op"`
	BytesPerOp          int64   `json:"bytes_per_op"`
	ProbesIssued        int64   `json:"probes_issued"`
	ProposalsRecomputed int64   `json:"proposals_recomputed"`
	Narrowings          int64   `json:"narrowings"`
	Iterations          int     `json:"iterations"`
	Interfaces          int     `json:"interfaces"`
	Resolved            int     `json:"resolved"`
}

type report struct {
	Profile      string `json:"profile"`
	Seed         int64  `json:"seed"`
	Runs         int    `json:"runs"`
	GoMaxProcs   int    `json:"go_max_procs"`
	PeakRSSBytes int64  `json:"peak_rss_bytes"`
	// Shards is the -shards setting of the "sharded" entry (0 when the
	// sharded engine was not benchmarked); ShardSpeedupX is the
	// unsharded worklist's ns_per_op over the sharded engine's.
	Shards        int            `json:"shards,omitempty"`
	ShardSpeedupX float64        `json:"shard_speedup_x,omitempty"`
	Engines       []engineReport `json:"engines"`

	// The -incremental scenario: mean re-convergence time of one
	// single-AS facility delta applied to a converged pipeline
	// (ApplyDelta, surgical repair) against a fresh full run over the
	// same mutated registry. Kept as top-level fields — the engines list
	// stays one entry per full-run engine.
	IncrementalDeltas     int     `json:"incremental_deltas,omitempty"`
	IncrementalNsPerOp    int64   `json:"incremental_ns_per_op,omitempty"`
	FreshNsPerOp          int64   `json:"fresh_ns_per_op,omitempty"`
	IncrementalSpeedupX   float64 `json:"incremental_speedup_x,omitempty"`
	IncrementalRecomputed int64   `json:"incremental_recomputed_per_op,omitempty"`
	FreshRecomputed       int64   `json:"fresh_recomputed,omitempty"`

	// The -serve scenario: the daemon's query path, cold (epoch cache
	// disabled, every query renders from the snapshot's materialized
	// tables) vs hot (cache warmed, every query hits its epoch entry),
	// over the same request mix. ServeSpeedupX = cold/hot, gated by
	// -min-serve-speedup; ServeHotAllocsPerQuery is the heap-allocation
	// cost of one steady-state query, gated by -max-hot-allocs.
	ServeQueries           int     `json:"serve_queries,omitempty"`
	ServeColdNsPerQuery    int64   `json:"serve_cold_ns_per_query,omitempty"`
	ServeHotNsPerQuery     int64   `json:"serve_hot_ns_per_query,omitempty"`
	ServeSpeedupX          float64 `json:"serve_speedup_x,omitempty"`
	ServeHotAllocsPerQuery float64 `json:"serve_hot_allocs_per_query,omitempty"`

	// The bulk query shapes over the same hot server: one
	// /v1/interfaces:batch POST of ServeBatchSize addresses against the
	// per-request loop of the same lookups (amortization gated by
	// -min-batch-amortization), and the /v1/interfaces/stream NDJSON
	// dump timed per emitted record.
	ServeBatchSize          int     `json:"serve_batch_size,omitempty"`
	ServeBatchNsPerQuery    int64   `json:"serve_batch_ns_per_query,omitempty"`
	ServeBatchAmortizationX float64 `json:"serve_batch_amortization_x,omitempty"`
	ServeStreamInterfaces   int     `json:"serve_stream_interfaces,omitempty"`
	ServeStreamNsPerIf      int64   `json:"serve_stream_ns_per_if,omitempty"`
}

// engineSpec names one benchmark entry: the report label plus the full
// CFS configuration it runs under.
type engineSpec struct {
	label string
	cfg   cfs.Config
}

// benchSpecs builds the entry list for a profile: worklist and rescan
// for the curated profiles, worklist only for the internet-scale one,
// plus a "sharded" entry when -shards is set.
func benchSpecs(profile string, shards int) []engineSpec {
	base := cfs.DefaultConfig()
	if profile == "large" {
		// The budgeted internet-scale operating point: every subsystem
		// on, iteration/follow-up/alias budgets tight enough that a run
		// finishes in minutes.
		base.MaxIterations = 3
		base.FollowUpBudget = 50
		base.TargetsPerInterface = 2
		base.VPsPerTarget = 1
		base.AliasRounds = []int{1}
	}
	withEngine := func(engine string, shards int) cfs.Config {
		c := base
		c.Engine = engine
		c.Shards = shards
		return c
	}
	specs := []engineSpec{{cfs.EngineWorklist, withEngine(cfs.EngineWorklist, 0)}}
	if profile != "large" {
		specs = append(specs, engineSpec{cfs.EngineRescan, withEngine(cfs.EngineRescan, 0)})
	}
	if shards > 0 {
		specs = append(specs, engineSpec{"sharded", withEngine(cfs.EngineWorklist, shards)})
	}
	return specs
}

func main() {
	var (
		profile     = flag.String("profile", "small", "world profile: small, medium, default, paper or large")
		seed        = flag.Int64("seed", 42, "simulation seed")
		runs        = flag.Int("runs", 3, "timed runs per engine per mode (fresh environment each)")
		shards      = flag.Int("shards", 0, "also benchmark the metro-sharded scheduler with this many shards (0 = skip)")
		out         = flag.String("out", "BENCH_cfs.json", "output file")
		maxOverhead = flag.Float64("max-overhead", 0, "fail when obs-on/obs-off wall-time ratio exceeds this (0 = no gate)")
		baseline    = flag.String("baseline", "", "previous report to compare against (read before -out is overwritten)")
		maxRegress  = flag.Float64("max-regress", 0, "fail when worklist ns_per_op regresses by more than this fraction vs -baseline (0 = no gate)")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the timed runs to this file")
		incremental = flag.Int("incremental", 0, "also benchmark delta re-convergence: apply this many single-AS facility deltas to a converged pipeline (0 = skip)")
		minIncSpeed = flag.Float64("min-incremental-speedup", 0, "fail when fresh/incremental wall-time ratio falls below this (0 = no gate)")
		serveBench  = flag.Bool("serve", false, "also benchmark the daemon's query path: hot (epoch cache) vs cold (render per query), plus the batch and stream shapes")
		serveQs     = flag.Int("serve-queries", 512, "request-mix size for -serve")
		minServeSp  = flag.Float64("min-serve-speedup", 0, "fail when the -serve cold/hot ratio falls below this (0 = no gate)")
		minBatchAm  = flag.Float64("min-batch-amortization", 0, "fail when the -serve batch/per-request amortization falls below this (0 = no gate)")
		maxHotAlloc = flag.Float64("max-hot-allocs", 0, "fail when the -serve hot path allocates more than this per query (0 = no gate)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}

	var wcfg world.Config
	switch *profile {
	case "small":
		wcfg = world.Small()
	case "medium":
		wcfg = world.Medium()
	case "default":
		wcfg = world.Default()
	case "paper":
		wcfg = world.PaperScale()
	case "large":
		wcfg = world.Large()
	default:
		fmt.Fprintf(os.Stderr, "cfsbench: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *runs < 1 {
		*runs = 1
	}

	// Read the baseline before any chance of -out clobbering it (the
	// common CI invocation points both at the committed BENCH_cfs.json).
	var base *report
	if *baseline != "" {
		b, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: baseline: %v\n", err)
			os.Exit(2)
		}
		base = b
	}

	rep := report{
		Profile:    *profile,
		Seed:       *seed,
		Runs:       *runs,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, spec := range benchSpecs(*profile, *shards) {
		er, err := measure(wcfg, *seed, spec, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
			os.Exit(1)
		}
		rep.Engines = append(rep.Engines, er)
		fmt.Printf("%-9s %12d ns/op  %12d ns/op(observed)  %9d allocs/op  %10d B/op  %8d probes  %8d recomputed  %6d narrowings\n",
			spec.label, er.NsPerOp, er.NsPerOpObserved, er.AllocsPerOp, er.BytesPerOp,
			er.ProbesIssued, er.ProposalsRecomputed, er.Narrowings)
	}
	for i, a := range rep.Engines {
		for _, b := range rep.Engines[i+1:] {
			if a.Resolved != b.Resolved || a.Interfaces != b.Interfaces {
				fmt.Fprintf(os.Stderr, "cfsbench: engines diverged: %s resolved %d/%d, %s resolved %d/%d\n",
					a.Engine, a.Resolved, a.Interfaces, b.Engine, b.Resolved, b.Interfaces)
				os.Exit(1)
			}
		}
	}
	if *shards > 0 {
		rep.Shards = *shards
		var wl, sh *engineReport
		for i := range rep.Engines {
			switch rep.Engines[i].Engine {
			case cfs.EngineWorklist:
				wl = &rep.Engines[i]
			case "sharded":
				sh = &rep.Engines[i]
			}
		}
		if wl != nil && sh != nil && sh.NsPerOp > 0 {
			rep.ShardSpeedupX = float64(wl.NsPerOp) / float64(sh.NsPerOp)
			fmt.Printf("shard speedup (%d shards): %.2fx\n", *shards, rep.ShardSpeedupX)
		}
	}
	if *incremental > 0 {
		if err := measureIncremental(&rep, wcfg, *seed, *incremental, *runs); err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("incremental %10d ns/op  %12d ns/op(fresh)  %.1fx speedup  %6d recomputed/op  %8d recomputed(fresh)\n",
			rep.IncrementalNsPerOp, rep.FreshNsPerOp, rep.IncrementalSpeedupX,
			rep.IncrementalRecomputed, rep.FreshRecomputed)
	}
	if *serveBench {
		if err := measureServe(&rep, *profile, *seed, *serveQs, *runs); err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serve     %12d ns/query(cold)  %8d ns/query(hot)  %.1fx cache speedup  %.2f allocs/query over %d queries\n",
			rep.ServeColdNsPerQuery, rep.ServeHotNsPerQuery, rep.ServeSpeedupX,
			rep.ServeHotAllocsPerQuery, rep.ServeQueries)
		fmt.Printf("serve     %12d ns/query(batch of %d)  %.1fx amortization  %8d ns/if(stream of %d)\n",
			rep.ServeBatchNsPerQuery, rep.ServeBatchSize, rep.ServeBatchAmortizationX,
			rep.ServeStreamNsPerIf, rep.ServeStreamInterfaces)
	}
	rep.PeakRSSBytes = peakRSS()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (peak RSS %.1f MiB)\n", *out, float64(rep.PeakRSSBytes)/(1<<20))

	if *maxOverhead > 0 {
		for _, er := range rep.Engines {
			if er.ObsOverheadX > *maxOverhead {
				fmt.Fprintf(os.Stderr, "cfsbench: %s engine obs overhead %.2fx exceeds gate %.2fx\n",
					er.Engine, er.ObsOverheadX, *maxOverhead)
				os.Exit(1)
			}
		}
	}
	if *minIncSpeed > 0 {
		if rep.IncrementalSpeedupX < *minIncSpeed {
			fmt.Fprintf(os.Stderr, "cfsbench: incremental speedup %.2fx below gate %.2fx\n",
				rep.IncrementalSpeedupX, *minIncSpeed)
			os.Exit(1)
		}
	}
	if *minServeSp > 0 {
		if rep.ServeSpeedupX < *minServeSp {
			fmt.Fprintf(os.Stderr, "cfsbench: serve cache speedup %.2fx below gate %.2fx\n",
				rep.ServeSpeedupX, *minServeSp)
			os.Exit(1)
		}
	}
	if *minBatchAm > 0 {
		if rep.ServeBatchAmortizationX < *minBatchAm {
			fmt.Fprintf(os.Stderr, "cfsbench: batch amortization %.2fx below gate %.2fx\n",
				rep.ServeBatchAmortizationX, *minBatchAm)
			os.Exit(1)
		}
	}
	if *maxHotAlloc > 0 && *serveBench {
		if rep.ServeHotAllocsPerQuery > *maxHotAlloc {
			fmt.Fprintf(os.Stderr, "cfsbench: hot path allocates %.2f per query, gate %.2f\n",
				rep.ServeHotAllocsPerQuery, *maxHotAlloc)
			os.Exit(1)
		}
	}
	if *maxRegress > 0 && base != nil {
		if err := checkRegression(base, &rep, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
			os.Exit(1)
		}
	}
}

// measureIncremental benchmarks the delta path: converge once, then
// apply k single-AS facility deltas one batch at a time and time each
// ApplyDelta; the reference is a fresh full run over the same mutated
// registry. Both numbers average over the -runs fresh environments.
func measureIncremental(rep *report, wcfg world.Config, seed int64, k, runs int) error {
	cfg := cfs.DefaultConfig()
	var incTotal, freshTotal time.Duration
	var incRecomp, freshRecomp, batches int64
	for r := 0; r < runs; r++ {
		env := experiments.NewEnv(wcfg, seed)
		p, res0 := env.RunCFSPipeline(cfg)
		if len(res0.Interfaces) == 0 {
			return fmt.Errorf("incremental: initial run observed no interfaces")
		}
		log := singleASDeltas(env, k)
		if len(log) < k {
			return fmt.Errorf("incremental: only %d of %d eligible single-AS deltas", len(log), k)
		}
		for _, d := range log {
			t0 := time.Now()
			res, err := p.ApplyDelta([]delta.Delta{d})
			if err != nil {
				return fmt.Errorf("incremental: %w", err)
			}
			incTotal += time.Since(t0)
			for _, h := range res.History {
				incRecomp += int64(h.Recomputed)
			}
			batches++
		}
		// The fresh reference sees the same end state: a new environment
		// whose registry has all k deltas applied up front.
		env2 := experiments.NewEnv(wcfg, seed)
		delta.ApplyToDatabase(env2.DB, log)
		t0 := time.Now()
		resF := env2.RunCFS(cfg)
		freshTotal += time.Since(t0)
		for _, h := range resF.History {
			freshRecomp += int64(h.Recomputed)
		}
	}
	rep.IncrementalDeltas = k
	rep.IncrementalNsPerOp = incTotal.Nanoseconds() / batches
	rep.FreshNsPerOp = freshTotal.Nanoseconds() / int64(runs)
	rep.IncrementalRecomputed = incRecomp / batches
	rep.FreshRecomputed = freshRecomp / int64(runs)
	if rep.IncrementalNsPerOp > 0 {
		rep.IncrementalSpeedupX = float64(rep.FreshNsPerOp) / float64(rep.IncrementalNsPerOp)
	}
	return nil
}

// singleASDeltas picks up to k deterministic one-AS facility removals:
// the first facility of each AS holding at least two, in AS order.
func singleASDeltas(env *experiments.Env, k int) []delta.Delta {
	var out []delta.Delta
	for _, as := range env.W.ASes {
		if len(out) >= k {
			break
		}
		facs := env.DB.FacilitiesOfAS(as.ASN)
		if len(facs) < 2 {
			continue
		}
		out = append(out, delta.Delta{
			Kind: delta.ASFacilityRemove, AS: as.ASN, Facility: facs[0],
		})
	}
	return out
}

// loadReport reads a previously written report.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// checkRegression gates the worklist engine's ns_per_op against the
// baseline report: new > old*(1+frac) fails. It runs after the fresh
// report is written, so the artifact always reflects the measured run
// even when the gate trips.
func checkRegression(base, fresh *report, frac float64) error {
	find := func(rep *report) *engineReport {
		for i := range rep.Engines {
			if rep.Engines[i].Engine == cfs.EngineWorklist {
				return &rep.Engines[i]
			}
		}
		return nil
	}
	b, f := find(base), find(fresh)
	if b == nil || b.NsPerOp <= 0 {
		return fmt.Errorf("baseline report has no usable worklist entry")
	}
	if f == nil {
		return fmt.Errorf("fresh report has no worklist entry")
	}
	ratio := float64(f.NsPerOp) / float64(b.NsPerOp)
	fmt.Printf("worklist ns/op vs baseline: %d -> %d (%.2fx)\n", b.NsPerOp, f.NsPerOp, ratio)
	if ratio > 1+frac {
		return fmt.Errorf("worklist ns_per_op regressed %.0f%% (gate %.0f%%): %d -> %d",
			(ratio-1)*100, frac*100, b.NsPerOp, f.NsPerOp)
	}
	// The serving cold path is gated the same way when both reports
	// measured it: a render-per-query regression means per-request work
	// crept back onto the hot path (the swap-time materialization
	// contract).
	if base.ServeColdNsPerQuery > 0 && fresh.ServeColdNsPerQuery > 0 {
		ratio := float64(fresh.ServeColdNsPerQuery) / float64(base.ServeColdNsPerQuery)
		fmt.Printf("serve cold ns/query vs baseline: %d -> %d (%.2fx)\n",
			base.ServeColdNsPerQuery, fresh.ServeColdNsPerQuery, ratio)
		if ratio > 1+frac {
			return fmt.Errorf("serve_cold_ns_per_query regressed %.0f%% (gate %.0f%%): %d -> %d",
				(ratio-1)*100, frac*100, base.ServeColdNsPerQuery, fresh.ServeColdNsPerQuery)
		}
	}
	return nil
}

// measure times full CFS runs of one engine in both modes and folds the
// work counters of the final observed run into the report.
//
// Scheduling matters for obs_overhead_x: timing all obs-off runs then
// all obs-on runs lets any monotone drift (first-touch page faults,
// thermal throttling, accumulated GC debt) land entirely on one mode,
// which is how an earlier report measured the *observed* engine as
// faster than the unobserved one (overhead 0.94x — pure noise). One
// untimed warmup per mode followed by strict off/on interleaving makes
// the two series sample the same machine conditions.
func measure(wcfg world.Config, seed int64, spec engineSpec, runs int) (engineReport, error) {
	cfg := spec.cfg
	er := engineReport{Engine: spec.label}

	for _, observe := range []bool{false, true} {
		if _, err := oneRun(wcfg, seed, cfg, observe, &er); err != nil {
			return er, err
		}
	}

	var plain, observed time.Duration
	var allocs, bytes int64
	var snap obs.Snapshot
	for i := 0; i < runs; i++ {
		p, err := oneRun(wcfg, seed, cfg, false, &er)
		if err != nil {
			return er, err
		}
		plain += p.wall
		allocs += p.allocs
		bytes += p.bytes
		o, err := oneRun(wcfg, seed, cfg, true, &er)
		if err != nil {
			return er, err
		}
		observed += o.wall
		snap = o.snap
	}
	er.NsPerOp = plain.Nanoseconds() / int64(runs)
	er.NsPerOpObserved = observed.Nanoseconds() / int64(runs)
	if er.NsPerOp > 0 {
		er.ObsOverheadX = float64(er.NsPerOpObserved) / float64(er.NsPerOp)
	}
	er.AllocsPerOp = allocs / int64(runs)
	er.BytesPerOp = bytes / int64(runs)
	er.Narrowings = snap.Counters["cfs.narrowings"]
	return er, nil
}

// runSample is the measurement of one fresh-environment CFS run.
type runSample struct {
	wall   time.Duration
	allocs int64 // heap allocations inside the timed region
	bytes  int64 // heap bytes allocated inside the timed region
	snap   obs.Snapshot
}

// oneRun executes one fresh-environment CFS run, timing only the
// pipeline (campaigns through convergence), and records the run's probe
// ledger and work counters in er. Environment construction happens
// before the MemStats baseline, so allocs/bytes cover the measured
// region alone.
func oneRun(wcfg world.Config, seed int64, cfg cfs.Config, observe bool, er *engineReport) (runSample, error) {
	var s runSample
	env := experiments.NewEnv(wcfg, seed)
	var o *obs.Obs
	if observe {
		o = obs.New(1 << 12)
		env.Instrument(o)
	}
	runtime.GC() // drain garbage from env construction off the timed region
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res := env.RunCFS(cfg)
	s.wall = time.Since(t0)
	runtime.ReadMemStats(&after)
	s.allocs = int64(after.Mallocs - before.Mallocs)
	s.bytes = int64(after.TotalAlloc - before.TotalAlloc)
	if len(res.Interfaces) == 0 {
		return s, fmt.Errorf("%s engine observed no interfaces", cfg.Engine)
	}
	er.ProbesIssued = int64(env.Engine.Probes())
	er.Iterations = len(res.History)
	er.Interfaces = len(res.Interfaces)
	er.Resolved = res.Resolved()
	recomputed := 0
	for _, h := range res.History {
		recomputed += h.Recomputed
	}
	er.ProposalsRecomputed = int64(recomputed)
	if o != nil {
		s.snap = o.Metrics.Snapshot()
		if got := s.snap.Counters["trace.probes.traceroute"] +
			s.snap.Counters["trace.probes.ping"] +
			s.snap.Counters["trace.probes.fabric_ping"]; got != er.ProbesIssued {
			return s, fmt.Errorf("%s engine: obs counters book %d probes, engine ledger %d",
				cfg.Engine, got, er.ProbesIssued)
		}
	}
	return s, nil
}

// peakRSS reports the process's peak resident set in bytes (Linux
// getrusage reports KiB).
func peakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}
