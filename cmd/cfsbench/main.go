// Command cfsbench benchmarks both CFS iteration cores and writes a
// machine-readable report (BENCH_cfs.json by default): wall time per
// run, probes issued, proposals recomputed, candidate-set narrowings,
// and the process's peak RSS. Each run rebuilds a fresh environment so
// the engines see bit-for-bit identical inputs; the tool fails if the
// two engines disagree on the resolved count.
//
// Every engine is timed twice — observability off and on — and the
// ratio is reported as obs_overhead_x. -max-overhead N turns that into
// a gate: exit nonzero when any engine's enabled/disabled ratio
// exceeds N (0, the default, disables the gate). CI uses a generous
// bound purely as a smoke check that the disabled path stays free.
//
// Usage:
//
//	cfsbench [-profile small|default|paper] [-seed N] [-runs N]
//	         [-out FILE] [-max-overhead X]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"syscall"
	"time"

	"facilitymap/internal/cfs"
	"facilitymap/internal/experiments"
	"facilitymap/internal/obs"
	"facilitymap/internal/world"
)

// engineReport is one engine's measurements. ns_per_op is the mean
// wall time of a full CFS run (campaigns included, world generation
// excluded) with observability disabled; ns_per_op_observed is the
// same with metrics and tracing attached.
type engineReport struct {
	Engine              string  `json:"engine"`
	NsPerOp             int64   `json:"ns_per_op"`
	NsPerOpObserved     int64   `json:"ns_per_op_observed"`
	ObsOverheadX        float64 `json:"obs_overhead_x"`
	ProbesIssued        int64   `json:"probes_issued"`
	ProposalsRecomputed int64   `json:"proposals_recomputed"`
	Narrowings          int64   `json:"narrowings"`
	Iterations          int     `json:"iterations"`
	Interfaces          int     `json:"interfaces"`
	Resolved            int     `json:"resolved"`
}

type report struct {
	Profile      string         `json:"profile"`
	Seed         int64          `json:"seed"`
	Runs         int            `json:"runs"`
	GoMaxProcs   int            `json:"go_max_procs"`
	PeakRSSBytes int64          `json:"peak_rss_bytes"`
	Engines      []engineReport `json:"engines"`
}

func main() {
	var (
		profile     = flag.String("profile", "small", "world profile: small, default or paper")
		seed        = flag.Int64("seed", 42, "simulation seed")
		runs        = flag.Int("runs", 3, "timed runs per engine per mode (fresh environment each)")
		out         = flag.String("out", "BENCH_cfs.json", "output file")
		maxOverhead = flag.Float64("max-overhead", 0, "fail when obs-on/obs-off wall-time ratio exceeds this (0 = no gate)")
	)
	flag.Parse()

	var wcfg world.Config
	switch *profile {
	case "small":
		wcfg = world.Small()
	case "default":
		wcfg = world.Default()
	case "paper":
		wcfg = world.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "cfsbench: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *runs < 1 {
		*runs = 1
	}

	rep := report{
		Profile:    *profile,
		Seed:       *seed,
		Runs:       *runs,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, engine := range []string{cfs.EngineWorklist, cfs.EngineRescan} {
		er, err := measure(wcfg, *seed, engine, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
			os.Exit(1)
		}
		rep.Engines = append(rep.Engines, er)
		fmt.Printf("%-9s %12d ns/op  %12d ns/op(observed)  %8d probes  %8d recomputed  %6d narrowings\n",
			engine, er.NsPerOp, er.NsPerOpObserved, er.ProbesIssued, er.ProposalsRecomputed, er.Narrowings)
	}
	if a, b := rep.Engines[0], rep.Engines[1]; a.Resolved != b.Resolved || a.Interfaces != b.Interfaces {
		fmt.Fprintf(os.Stderr, "cfsbench: engines diverged: %s resolved %d/%d, %s resolved %d/%d\n",
			a.Engine, a.Resolved, a.Interfaces, b.Engine, b.Resolved, b.Interfaces)
		os.Exit(1)
	}
	rep.PeakRSSBytes = peakRSS()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cfsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (peak RSS %.1f MiB)\n", *out, float64(rep.PeakRSSBytes)/(1<<20))

	if *maxOverhead > 0 {
		for _, er := range rep.Engines {
			if er.ObsOverheadX > *maxOverhead {
				fmt.Fprintf(os.Stderr, "cfsbench: %s engine obs overhead %.2fx exceeds gate %.2fx\n",
					er.Engine, er.ObsOverheadX, *maxOverhead)
				os.Exit(1)
			}
		}
	}
}

// measure times `runs` full CFS runs of one engine in both modes and
// folds the work counters of the final observed run into the report.
func measure(wcfg world.Config, seed int64, engine string, runs int) (engineReport, error) {
	cfg := cfs.DefaultConfig()
	cfg.Engine = engine
	er := engineReport{Engine: engine}

	plain, _, err := timedRuns(wcfg, seed, cfg, runs, false, &er)
	if err != nil {
		return er, err
	}
	observed, snap, err := timedRuns(wcfg, seed, cfg, runs, true, &er)
	if err != nil {
		return er, err
	}
	er.NsPerOp = plain.Nanoseconds() / int64(runs)
	er.NsPerOpObserved = observed.Nanoseconds() / int64(runs)
	if er.NsPerOp > 0 {
		er.ObsOverheadX = float64(er.NsPerOpObserved) / float64(er.NsPerOp)
	}
	er.Narrowings = snap.Counters["cfs.narrowings"]
	return er, nil
}

// timedRuns executes `runs` fresh-environment CFS runs, timing only the
// pipeline (campaigns through convergence), and records the final run's
// probe ledger and work counters in er.
func timedRuns(wcfg world.Config, seed int64, cfg cfs.Config, runs int, observe bool, er *engineReport) (time.Duration, obs.Snapshot, error) {
	var total time.Duration
	var snap obs.Snapshot
	for i := 0; i < runs; i++ {
		env := experiments.NewEnv(wcfg, seed)
		var o *obs.Obs
		if observe {
			o = obs.New(1 << 12)
			env.Instrument(o)
		}
		t0 := time.Now()
		res := env.RunCFS(cfg)
		total += time.Since(t0)
		if len(res.Interfaces) == 0 {
			return 0, snap, fmt.Errorf("%s engine observed no interfaces", cfg.Engine)
		}
		er.ProbesIssued = int64(env.Engine.Probes())
		er.Iterations = len(res.History)
		er.Interfaces = len(res.Interfaces)
		er.Resolved = res.Resolved()
		recomputed := 0
		for _, h := range res.History {
			recomputed += h.Recomputed
		}
		er.ProposalsRecomputed = int64(recomputed)
		if o != nil {
			snap = o.Metrics.Snapshot()
			if got := snap.Counters["trace.probes.traceroute"] +
				snap.Counters["trace.probes.ping"] +
				snap.Counters["trace.probes.fabric_ping"]; got != er.ProbesIssued {
				return 0, snap, fmt.Errorf("%s engine: obs counters book %d probes, engine ledger %d",
					cfg.Engine, got, er.ProbesIssued)
			}
		}
	}
	return total, snap, nil
}

// peakRSS reports the process's peak resident set in bytes (Linux
// getrusage reports KiB).
func peakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}
