// Command worldgen generates a synthetic Internet and dumps it as JSON:
// metros, facilities, IXPs (with switch fabrics), ASes, routers,
// interfaces, memberships and interconnection links. The dump loads back
// with world.DecodeJSON, so topologies can be authored or post-processed
// externally and fed to the full pipeline.
//
// Usage:
//
//	worldgen [-profile small|default|paper] [-seed N] [-summary]
//	worldgen -check dump.json   # validate + summarise an existing dump
package main

import (
	"flag"
	"fmt"
	"os"

	"facilitymap/internal/world"
)

func main() {
	var (
		profile = flag.String("profile", "default", "world profile: small, default or paper")
		seed    = flag.Int64("seed", 42, "generation seed")
		summary = flag.Bool("summary", false, "print counts instead of the full JSON dump")
		check   = flag.String("check", "", "load a dump, validate it and print its summary")
	)
	flag.Parse()

	var w *world.World
	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err = world.DecodeJSON(f)
		if err != nil {
			fatal(err)
		}
		printSummary(w)
		return
	}

	var cfg world.Config
	switch *profile {
	case "small":
		cfg = world.Small()
	case "default":
		cfg = world.Default()
	case "paper":
		cfg = world.PaperScale()
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	cfg.Seed = *seed
	w = world.Generate(cfg)

	if *summary {
		printSummary(w)
		return
	}
	if err := w.EncodeJSON(os.Stdout); err != nil {
		fatal(err)
	}
}

func printSummary(w *world.World) {
	kinds := map[world.LinkKind]int{}
	for _, l := range w.Links {
		kinds[l.Kind]++
	}
	remote := 0
	for _, m := range w.Memberships {
		if m.Remote {
			remote++
		}
	}
	fmt.Printf("metros      %d\n", len(w.Metros))
	fmt.Printf("facilities  %d\n", len(w.Facilities))
	fmt.Printf("ixps        %d (%d active)\n", len(w.IXPs), len(w.ActiveIXPs()))
	fmt.Printf("ases        %d\n", len(w.ASes))
	fmt.Printf("routers     %d\n", len(w.Routers))
	fmt.Printf("interfaces  %d\n", len(w.Interfaces))
	fmt.Printf("memberships %d (%d remote)\n", len(w.Memberships), remote)
	for kind, n := range kinds {
		fmt.Printf("links/%-18s %d\n", kind, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
