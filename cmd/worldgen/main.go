// Command worldgen generates a synthetic Internet and dumps it as JSON:
// metros, facilities, IXPs (with switch fabrics), ASes, routers,
// interfaces, memberships and interconnection links. The dump loads back
// with world.DecodeJSON, so topologies can be authored or post-processed
// externally and fed to the full pipeline.
//
// Usage:
//
//	worldgen [-profile small|medium|default|paper|large] [-seed N] [-summary]
//	worldgen -partition N ...   # also print the N-shard metro partition
//	worldgen -check dump.json   # validate + summarise an existing dump
//	worldgen -churn N ...       # emit an N-record delta log instead
//	worldgen -churn N -out F    # append the log to F (tailable by cfsd -follow)
//
// -churn N emits a reproducible JSONL delta log — facility-list edits,
// IXP membership changes, BGP sessions coming and going, cross-connects
// appearing and vanishing — drawn against the generated world. The log
// replays into a running pipeline via cfsmap -deltas, or onto the world
// itself with delta.ApplyToWorld (observation-layer records skipped).
//
// -partition N splits the world into N metro-keyed shards (the
// decomposition the sharded CFS engine mirrors) and prints each shard's
// interface count plus the cross-shard exchange load — the links and
// IXP memberships that span shards. Useful for judging how balanced a
// shard count is before running cfsmap -shards N.
package main

import (
	"flag"
	"fmt"
	"os"

	"facilitymap/internal/delta"
	"facilitymap/internal/world"
)

func main() {
	var (
		profile   = flag.String("profile", "default", "world profile: small, medium, default, paper or large")
		seed      = flag.Int64("seed", 42, "generation seed")
		summary   = flag.Bool("summary", false, "print counts instead of the full JSON dump")
		partition = flag.Int("partition", 0, "print the N-shard metro partition (shard sizes, cross-shard load)")
		check     = flag.String("check", "", "load a dump, validate it and print its summary")
		churn     = flag.Int("churn", 0, "emit an N-record JSONL delta log for the generated world instead of the dump")
		out       = flag.String("out", "", "write to FILE instead of stdout; churn logs are appended, so a live cfsd -follow can tail the file")
	)
	flag.Parse()

	var w *world.World
	if *check != "" {
		f, err := os.Open(*check)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err = world.DecodeJSON(f)
		if err != nil {
			fatal(err)
		}
		printSummary(w)
		if *partition > 0 {
			printPartition(w, *partition)
		}
		return
	}

	var cfg world.Config
	switch *profile {
	case "small":
		cfg = world.Small()
	case "medium":
		cfg = world.Medium()
	case "default":
		cfg = world.Default()
	case "paper":
		cfg = world.PaperScale()
	case "large":
		cfg = world.Large()
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	cfg.Seed = *seed
	w = world.Generate(cfg)

	if *churn > 0 {
		log, _ := delta.Churn(w, *churn, *seed)
		dst, closeDst, err := output(*out, true)
		if err != nil {
			fatal(err)
		}
		defer closeDst()
		if err := delta.EncodeJSONL(dst, log); err != nil {
			fatal(err)
		}
		return
	}

	if *summary || *partition > 0 {
		if *summary {
			printSummary(w)
		}
		if *partition > 0 {
			printPartition(w, *partition)
		}
		return
	}
	dst, closeDst, err := output(*out, false)
	if err != nil {
		fatal(err)
	}
	defer closeDst()
	if err := w.EncodeJSON(dst); err != nil {
		fatal(err)
	}
}

// output resolves -out: stdout when empty; otherwise the named file,
// opened in append mode for churn logs (a tailing cfsd must never see
// the file truncate under it) and truncated for world dumps.
func output(path string, appendMode bool) (*os.File, func(), error) {
	if path == "" {
		return os.Stdout, func() {}, nil
	}
	mode := os.O_CREATE | os.O_WRONLY
	if appendMode {
		mode |= os.O_APPEND
	} else {
		mode |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// printPartition renders the metro-keyed shard split: per-shard metro
// and interface counts, plus the exchange load the sharded CFS engine
// would carry across shards.
func printPartition(w *world.World, n int) {
	p := world.PartitionByMetro(w, n)
	fmt.Printf("partition   %d shards over %d metros\n", p.N, len(w.Metros))
	metros := make([]int, p.N)
	for _, s := range p.ShardOfMetro {
		metros[s]++
	}
	for s := 0; s < p.N; s++ {
		fmt.Printf("  shard %-3d %4d metros  %7d interfaces\n", s, metros[s], len(p.Interfaces[s]))
	}
	fmt.Printf("  exchange  %d cross-shard links, %d cross-shard memberships\n",
		len(p.ExchangeLinks), len(p.ExchangeMemberships))
}

func printSummary(w *world.World) {
	kinds := map[world.LinkKind]int{}
	for _, l := range w.Links {
		kinds[l.Kind]++
	}
	remote := 0
	for _, m := range w.Memberships {
		if m.Remote {
			remote++
		}
	}
	fmt.Printf("metros      %d\n", len(w.Metros))
	fmt.Printf("facilities  %d\n", len(w.Facilities))
	fmt.Printf("ixps        %d (%d active)\n", len(w.IXPs), len(w.ActiveIXPs()))
	fmt.Printf("ases        %d\n", len(w.ASes))
	fmt.Printf("routers     %d\n", len(w.Routers))
	fmt.Printf("interfaces  %d\n", len(w.Interfaces))
	fmt.Printf("memberships %d (%d remote)\n", len(w.Memberships), remote)
	for kind, n := range kinds {
		fmt.Printf("links/%-18s %d\n", kind, n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
