// Command cfsmap runs the full pipeline — world generation, measurement
// campaigns, Constrained Facility Search — and prints the inferred
// interface-to-facility mapping plus a validation report.
//
// Usage:
//
//	cfsmap [-profile small|medium|default|paper|large] [-seed N]
//	       [-iterations N] [-workers N] [-engine worklist|rescan]
//	       [-shards N] [-v] [-limit N] [-unresolved] [-validate]
//	       [-resilience] [-metrics] [-trace-log FILE] [-pprof ADDR]
//
// -workers bounds the goroutines used for the parallel phases of the
// search (0 = one per CPU, 1 = fully serial). Every worker count
// produces the identical mapping; the flag only trades wall-clock time
// for cores.
//
// -engine picks the iteration core: the incremental worklist (default)
// or the full-rescan escape hatch. Both produce the identical mapping;
// -v prints the per-iteration convergence table (dirty adjacencies,
// recomputed proposals, wall time) so the difference is observable.
//
// -shards N layers the metro-sharded converge/exchange scheduler on
// top of the worklist engine: the dirty frontier is partitioned by
// metro cluster and each shard converges concurrently, with a
// deterministic exchange round for cross-shard constraints. Every
// shard count produces the identical mapping; the flag matters on the
// large profile, where per-metro parallelism is the only way a full
// convergence run fits in reasonable wall-clock time.
//
// Observability (strictly one-way: enabling any of these cannot change
// the mapping):
//
//   - -metrics prints the full metric snapshot after the run — probes
//     issued per kind, per-platform usage, CFS work counters and phase
//     timing histograms — on stderr.
//   - -trace-log FILE writes the structured event trace (one JSON
//     object per line: iterations, constraint passes, measurements,
//     campaigns) to FILE.
//   - -pprof ADDR serves net/http/pprof on ADDR (e.g. localhost:6060)
//     for CPU/heap profiling of long runs.
//
// Offline mode runs the same algorithm on real data instead of the
// simulator: a PeeringDB-style JSON dump, a plain-text BGP table
// ("prefix asn" per line) and traceroute transcripts:
//
//	cfsmap -peeringdb dump.json -bgp table.txt -traces campaign.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"facilitymap"
	"facilitymap/internal/cfs"
	"facilitymap/internal/delta"
	"facilitymap/internal/ip2asn"
	"facilitymap/internal/obs"
	"facilitymap/internal/registry"
	"facilitymap/internal/resilience"
	"facilitymap/internal/trace"
)

// traceLogCapacity bounds the event ring: enough to keep a full
// default-profile run, cheap enough to sit idle when tracing is off.
const traceLogCapacity = 1 << 17

func main() {
	var (
		profile    = flag.String("profile", "default", "world profile: small, medium, default, paper or large")
		seed       = flag.Int64("seed", 42, "simulation seed")
		iterations = flag.Int("iterations", 100, "CFS iteration cap")
		workers    = flag.Int("workers", 0, "worker goroutines for the parallel search phases (0 = one per CPU, 1 = serial)")
		engine     = flag.String("engine", cfs.EngineWorklist, "CFS iteration core: worklist (incremental) or rescan (full)")
		shards     = flag.Int("shards", 0, "metro-cluster shards for the worklist engine (0 = unsharded)")
		verbose    = flag.Bool("v", false, "print the per-iteration convergence table (work counters, wall time)")
		limit      = flag.Int("limit", 40, "rows of the mapping to print (0 = all)")
		unresolved = flag.Bool("unresolved", false, "include unresolved interfaces in the listing")
		validate   = flag.Bool("validate", true, "score the mapping against the ground-truth sources")
		resil      = flag.Bool("resilience", false, "print the facility-criticality ranking and top outage simulation")
		why        = flag.String("why", "", "print the evidence behind the inference for one interface address")
		asJSON     = flag.Bool("json", false, "emit the mapping as JSON instead of tables")
		deltasFile = flag.String("deltas", "", "replay a JSONL delta log (see worldgen -churn) after the initial convergence")
		deltaBatch = flag.Int("delta-batch", 25, "deltas applied per epoch when replaying -deltas")

		metrics   = flag.Bool("metrics", false, "print the metric snapshot (probe counts, work counters, phase timings) on stderr after the run")
		traceLog  = flag.String("trace-log", "", "write the structured event trace (JSONL) to this file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		pdbFile    = flag.String("peeringdb", "", "offline: PeeringDB-style JSON dump")
		bgpFile    = flag.String("bgp", "", "offline: BGP table, one \"prefix asn\" per line")
		tracesFile = flag.String("traces", "", "offline: traceroute transcripts")
	)
	flag.Parse()

	if *engine != cfs.EngineWorklist && *engine != cfs.EngineRescan {
		fmt.Fprintf(os.Stderr, "cfsmap: unknown -engine %q (want %q or %q)\n",
			*engine, cfs.EngineWorklist, cfs.EngineRescan)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "cfsmap: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", *pprofAddr)
	}

	var o *obs.Obs
	if *metrics || *traceLog != "" {
		o = obs.New(traceLogCapacity)
	}

	if *pdbFile != "" || *tracesFile != "" {
		if err := runOffline(*pdbFile, *bgpFile, *tracesFile, *iterations, *workers, *engine, *limit, *unresolved, *verbose, o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		flushObservability(o, *metrics, *traceLog)
		return
	}

	sys, err := facilitymap.NewSystem(facilitymap.Config{
		Profile:       *profile,
		Seed:          *seed,
		MaxIterations: *iterations,
		Workers:       *workers,
		Engine:        *engine,
		Shards:        *shards,
		Explain:       *why != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("world: %d facilities, %d IXPs, %d ASes — running CFS (%s engine)...\n",
		len(sys.Env.W.Facilities), len(sys.Env.W.IXPs), len(sys.Env.W.ASes), *engine)
	if o != nil {
		sys.Env.Instrument(o)
	}

	m := sys.MapInterconnections()
	defer flushObservability(o, *metrics, *traceLog)
	if *deltasFile != "" {
		var err error
		m, err = replayDeltas(sys, *deltasFile, *deltaBatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *asJSON {
		if *verbose {
			printHistory(os.Stderr, m.Result().History) // keep stdout valid JSON
		}
		if err := m.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *verbose {
		fmt.Println()
		printHistory(os.Stdout, m.Result().History)
	}
	fmt.Println()
	fmt.Println(m.Summary())

	fmt.Printf("%-16s %-34s %-28s %s\n", "INTERFACE", "OWNER", "FACILITY", "CITY")
	printed := 0
	for _, info := range m.Interfaces() {
		if !info.Resolved && !*unresolved {
			continue
		}
		fac := info.Facility
		if !info.Resolved {
			fac = fmt.Sprintf("(%d candidates)", len(info.Candidate))
		}
		flags := ""
		if info.Remote {
			flags += " [remote]"
		}
		if info.Heuristic {
			flags += " [heuristic]"
		}
		fmt.Printf("%-16s %-34s %-28s %s%s\n", info.IP, info.Owner, fac, info.City, flags)
		printed++
		if *limit > 0 && printed >= *limit {
			fmt.Printf("... (%d more; raise -limit to see them)\n", len(m.Interfaces())-printed)
			break
		}
	}

	if *why != "" {
		info, ok := m.Lookup(*why)
		if !ok {
			fmt.Printf("\nno inference recorded for %s\n", *why)
		} else {
			fmt.Printf("\nevidence for %s (%s):\n", info.IP, info.Owner)
			if len(info.Evidence) == 0 {
				fmt.Println("  (no constraints were applied)")
			}
			for _, ev := range info.Evidence {
				fmt.Printf("  - %s\n", ev)
			}
		}
	}

	if *resil {
		an := resilience.Analyze(sys.Env.DB, m.Result())
		fmt.Println()
		fmt.Println(an.Render(10))
		if rank := an.Ranking(); len(rank) > 0 {
			out := an.SimulateOutage(rank[0].Facility)
			fmt.Printf("outage of %s: %d links lost, %d AS pairs severed, %d degraded\n",
				out.Name, out.LostLinks, len(out.SeveredPairs), out.DegradedPairs)
		}
	}

	if *validate {
		v := m.Validate()
		fmt.Printf("\nvalidation: overall %s (%.1f%%)\n", v.Overall, 100*v.Overall.Frac())
		for src, c := range v.BySource {
			if c.Total > 0 {
				fmt.Printf("  %-18s %s (%.1f%%)\n", src, c, 100*c.Frac())
			}
		}
		if v.CityLevel.Total > 0 {
			fmt.Printf("  %-18s %s (%.1f%%)\n", "city-level", v.CityLevel, 100*v.CityLevel.Frac())
		}
		if v.RemotePeering.Total > 0 {
			fmt.Printf("  %-18s %s (%.1f%%)\n", "remote flags", v.RemotePeering, 100*v.RemotePeering.Frac())
		}
	}
}

// replayDeltas streams a JSONL delta log into the live pipeline in
// fixed-size batches, printing one line per published epoch, and
// returns the final snapshot.
func replayDeltas(sys *facilitymap.System, file string, batch int) (*facilitymap.Mapping, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := delta.DecodeJSONL(f)
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		batch = len(log)
	}
	fmt.Printf("\nreplaying %d deltas in batches of %d\n", len(log), batch)
	fmt.Printf("%-6s %-7s %-9s %-9s %s\n", "EPOCH", "DELTAS", "OBSERVED", "RESOLVED", "FRACTION")
	m := sys.Current()
	for lo := 0; lo < len(log); lo += batch {
		hi := lo + batch
		if hi > len(log) {
			hi = len(log)
		}
		m, err = sys.Apply(log[lo:hi])
		if err != nil {
			return nil, err
		}
		res := m.Result()
		fmt.Printf("%-6d %-7d %-9d %-9d %.1f%%\n",
			m.Epoch(), hi-lo, len(res.Interfaces), res.Resolved(), 100*res.ResolvedFraction())
	}
	return m, nil
}

// flushObservability prints the metric snapshot (stderr, so stdout
// stays a clean mapping or JSON document) and writes the event trace.
func flushObservability(o *obs.Obs, metrics bool, traceLog string) {
	if o == nil {
		return
	}
	if metrics {
		fmt.Fprint(os.Stderr, o.Metrics.Snapshot().Render())
	}
	if traceLog != "" {
		f, err := os.Create(traceLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfsmap: trace log: %v\n", err)
			return
		}
		defer f.Close()
		if err := o.Tracer.WriteJSONL(f); err != nil {
			fmt.Fprintf(os.Stderr, "cfsmap: trace log: %v\n", err)
			return
		}
		if d := o.Tracer.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "cfsmap: trace log: ring overflowed, oldest %d events dropped\n", d)
		}
	}
}

// printHistory renders the per-iteration convergence table: resolution
// progress plus the engine's work counters, so a rescan and a worklist
// run can be compared without a profiler.
func printHistory(w io.Writer, history []cfs.IterationStats) {
	fmt.Fprintf(w, "%-5s %-9s %-9s %-8s %-8s %-7s %-10s %s\n",
		"ITER", "OBSERVED", "RESOLVED", "FOLLOW", "NEWADJ", "DIRTY", "RECOMPUTED", "WALL")
	for _, h := range history {
		fmt.Fprintf(w, "%-5d %-9d %-9d %-8d %-8d %-7d %-10d %v\n",
			h.Iteration, h.Observed, h.Resolved, h.FollowUps, h.NewAdjs,
			h.DirtyAdjs, h.Recomputed, h.WallTime.Round(time.Microsecond))
	}
}

// runOffline executes CFS over externally-supplied data: registry dump,
// BGP table and traceroute transcripts. Alias resolution, remote-peering
// detection and targeted follow-ups need live measurement access and are
// disabled; steps 1-2 plus the §4.3/§4.4 placements still run.
func runOffline(pdbFile, bgpFile, tracesFile string, iterations, workers int, engine string, limit int, unresolved, verbose bool, o *obs.Obs) error {
	if pdbFile == "" || tracesFile == "" {
		return fmt.Errorf("offline mode needs both -peeringdb and -traces")
	}
	pdb, err := os.Open(pdbFile)
	if err != nil {
		return err
	}
	defer pdb.Close()
	db, _, err := registry.FromPeeringDB(pdb)
	if err != nil {
		return err
	}
	var svcIPASN *ip2asn.Service
	if bgpFile != "" {
		f, err := os.Open(bgpFile)
		if err != nil {
			return err
		}
		defer f.Close()
		entries, err := ip2asn.ParseTable(f)
		if err != nil {
			return err
		}
		svcIPASN = ip2asn.FromTable(entries)
	} else {
		svcIPASN = ip2asn.FromTable(nil) // netixlan port records only
	}
	tf, err := os.Open(tracesFile)
	if err != nil {
		return err
	}
	defer tf.Close()
	paths, err := trace.Parse(tf)
	if err != nil {
		return err
	}
	fmt.Printf("offline: %d facilities, %d exchanges, %d traceroutes\n",
		len(db.Facilities), len(db.IXPs), len(paths))

	cfg := cfs.DefaultConfig()
	cfg.MaxIterations = iterations
	cfg.Workers = workers
	if engine != "" {
		cfg.Engine = engine
	}
	cfg.UseTargeted = false
	cfg.UseAliasResolution = false
	cfg.UseRemoteDetection = false
	cfg.Obs = o
	p, err := cfs.New(cfg, db, svcIPASN, nil, nil, nil)
	if err != nil {
		return err
	}
	res := p.Run(paths)

	if verbose {
		printHistory(os.Stdout, res.History)
		fmt.Println()
	}
	fmt.Printf("interfaces observed: %d, resolved: %d (%.1f%%)\n\n",
		len(res.Interfaces), res.Resolved(), 100*res.ResolvedFraction())
	fmt.Printf("%-16s %-12s %-30s %s\n", "INTERFACE", "OWNER", "FACILITY", "CANDIDATES")
	printed := 0
	for ip, ir := range res.Interfaces {
		if !ir.Resolved && !unresolved {
			continue
		}
		fac := ""
		if ir.Resolved {
			if rec, ok := db.Facilities[ir.Facility]; ok {
				fac = rec.Name
			}
		}
		fmt.Printf("%-16s %-12v %-30s %d\n", ip, ir.Owner, fac, len(ir.Candidates))
		printed++
		if limit > 0 && printed >= limit {
			break
		}
	}
	return nil
}
