// Command cfsmap runs the full pipeline — world generation, measurement
// campaigns, Constrained Facility Search — and prints the inferred
// interface-to-facility mapping plus a validation report.
//
// Usage:
//
//	cfsmap [-profile small|default|paper] [-seed N] [-iterations N]
//	       [-workers N] [-engine worklist|rescan] [-v]
//	       [-limit N] [-unresolved] [-validate] [-resilience]
//
// -workers bounds the goroutines used for the parallel phases of the
// search (0 = one per CPU, 1 = fully serial). Every worker count
// produces the identical mapping; the flag only trades wall-clock time
// for cores.
//
// -engine picks the iteration core: the incremental worklist (default)
// or the full-rescan escape hatch. Both produce the identical mapping;
// -v prints the per-iteration convergence table (dirty adjacencies,
// recomputed proposals, wall time) so the difference is observable.
//
// Offline mode runs the same algorithm on real data instead of the
// simulator: a PeeringDB-style JSON dump, a plain-text BGP table
// ("prefix asn" per line) and traceroute transcripts:
//
//	cfsmap -peeringdb dump.json -bgp table.txt -traces campaign.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"facilitymap"
	"facilitymap/internal/cfs"
	"facilitymap/internal/ip2asn"
	"facilitymap/internal/registry"
	"facilitymap/internal/resilience"
	"facilitymap/internal/trace"
)

func main() {
	var (
		profile    = flag.String("profile", "default", "world profile: small, default or paper")
		seed       = flag.Int64("seed", 42, "simulation seed")
		iterations = flag.Int("iterations", 100, "CFS iteration cap")
		workers    = flag.Int("workers", 0, "worker goroutines for the parallel search phases (0 = one per CPU, 1 = serial)")
		engine     = flag.String("engine", cfs.EngineWorklist, "CFS iteration core: worklist (incremental) or rescan (full)")
		verbose    = flag.Bool("v", false, "print the per-iteration convergence table (work counters, wall time)")
		limit      = flag.Int("limit", 40, "rows of the mapping to print (0 = all)")
		unresolved = flag.Bool("unresolved", false, "include unresolved interfaces in the listing")
		validate   = flag.Bool("validate", true, "score the mapping against the ground-truth sources")
		resil      = flag.Bool("resilience", false, "print the facility-criticality ranking and top outage simulation")
		why        = flag.String("why", "", "print the evidence behind the inference for one interface address")
		asJSON     = flag.Bool("json", false, "emit the mapping as JSON instead of tables")

		pdbFile    = flag.String("peeringdb", "", "offline: PeeringDB-style JSON dump")
		bgpFile    = flag.String("bgp", "", "offline: BGP table, one \"prefix asn\" per line")
		tracesFile = flag.String("traces", "", "offline: traceroute transcripts")
	)
	flag.Parse()

	if *engine != cfs.EngineWorklist && *engine != cfs.EngineRescan {
		fmt.Fprintf(os.Stderr, "cfsmap: unknown -engine %q (want %q or %q)\n",
			*engine, cfs.EngineWorklist, cfs.EngineRescan)
		os.Exit(2)
	}

	if *pdbFile != "" || *tracesFile != "" {
		if err := runOffline(*pdbFile, *bgpFile, *tracesFile, *iterations, *workers, *engine, *limit, *unresolved, *verbose); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	sys, err := facilitymap.NewSystem(facilitymap.Config{
		Profile:       *profile,
		Seed:          *seed,
		MaxIterations: *iterations,
		Workers:       *workers,
		Engine:        *engine,
		Explain:       *why != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("world: %d facilities, %d IXPs, %d ASes — running CFS (%s engine)...\n",
		len(sys.Env.W.Facilities), len(sys.Env.W.IXPs), len(sys.Env.W.ASes), *engine)

	m := sys.MapInterconnections()
	if *asJSON {
		if *verbose {
			printHistory(os.Stderr, m.Result().History) // keep stdout valid JSON
		}
		if err := m.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *verbose {
		fmt.Println()
		printHistory(os.Stdout, m.Result().History)
	}
	fmt.Println()
	fmt.Println(m.Summary())

	fmt.Printf("%-16s %-34s %-28s %s\n", "INTERFACE", "OWNER", "FACILITY", "CITY")
	printed := 0
	for _, info := range m.Interfaces() {
		if !info.Resolved && !*unresolved {
			continue
		}
		fac := info.Facility
		if !info.Resolved {
			fac = fmt.Sprintf("(%d candidates)", len(info.Candidate))
		}
		flags := ""
		if info.Remote {
			flags += " [remote]"
		}
		if info.Heuristic {
			flags += " [heuristic]"
		}
		fmt.Printf("%-16s %-34s %-28s %s%s\n", info.IP, info.Owner, fac, info.City, flags)
		printed++
		if *limit > 0 && printed >= *limit {
			fmt.Printf("... (%d more; raise -limit to see them)\n", len(m.Interfaces())-printed)
			break
		}
	}

	if *why != "" {
		info, ok := m.Lookup(*why)
		if !ok {
			fmt.Printf("\nno inference recorded for %s\n", *why)
		} else {
			fmt.Printf("\nevidence for %s (%s):\n", info.IP, info.Owner)
			if len(info.Evidence) == 0 {
				fmt.Println("  (no constraints were applied)")
			}
			for _, ev := range info.Evidence {
				fmt.Printf("  - %s\n", ev)
			}
		}
	}

	if *resil {
		an := resilience.Analyze(sys.Env.DB, m.Result())
		fmt.Println()
		fmt.Println(an.Render(10))
		if rank := an.Ranking(); len(rank) > 0 {
			out := an.SimulateOutage(rank[0].Facility)
			fmt.Printf("outage of %s: %d links lost, %d AS pairs severed, %d degraded\n",
				out.Name, out.LostLinks, len(out.SeveredPairs), out.DegradedPairs)
		}
	}

	if *validate {
		v := m.Validate()
		fmt.Printf("\nvalidation: overall %s (%.1f%%)\n", v.Overall, 100*v.Overall.Frac())
		for src, c := range v.BySource {
			if c.Total > 0 {
				fmt.Printf("  %-18s %s (%.1f%%)\n", src, c, 100*c.Frac())
			}
		}
		if v.CityLevel.Total > 0 {
			fmt.Printf("  %-18s %s (%.1f%%)\n", "city-level", v.CityLevel, 100*v.CityLevel.Frac())
		}
		if v.RemotePeering.Total > 0 {
			fmt.Printf("  %-18s %s (%.1f%%)\n", "remote flags", v.RemotePeering, 100*v.RemotePeering.Frac())
		}
	}
}

// printHistory renders the per-iteration convergence table: resolution
// progress plus the engine's work counters, so a rescan and a worklist
// run can be compared without a profiler.
func printHistory(w io.Writer, history []cfs.IterationStats) {
	fmt.Fprintf(w, "%-5s %-9s %-9s %-8s %-8s %-7s %-10s %s\n",
		"ITER", "OBSERVED", "RESOLVED", "FOLLOW", "NEWADJ", "DIRTY", "RECOMPUTED", "WALL")
	for _, h := range history {
		fmt.Fprintf(w, "%-5d %-9d %-9d %-8d %-8d %-7d %-10d %v\n",
			h.Iteration, h.Observed, h.Resolved, h.FollowUps, h.NewAdjs,
			h.DirtyAdjs, h.Recomputed, h.WallTime.Round(time.Microsecond))
	}
}

// runOffline executes CFS over externally-supplied data: registry dump,
// BGP table and traceroute transcripts. Alias resolution, remote-peering
// detection and targeted follow-ups need live measurement access and are
// disabled; steps 1-2 plus the §4.3/§4.4 placements still run.
func runOffline(pdbFile, bgpFile, tracesFile string, iterations, workers int, engine string, limit int, unresolved, verbose bool) error {
	if pdbFile == "" || tracesFile == "" {
		return fmt.Errorf("offline mode needs both -peeringdb and -traces")
	}
	pdb, err := os.Open(pdbFile)
	if err != nil {
		return err
	}
	defer pdb.Close()
	db, _, err := registry.FromPeeringDB(pdb)
	if err != nil {
		return err
	}
	var svcIPASN *ip2asn.Service
	if bgpFile != "" {
		f, err := os.Open(bgpFile)
		if err != nil {
			return err
		}
		defer f.Close()
		entries, err := ip2asn.ParseTable(f)
		if err != nil {
			return err
		}
		svcIPASN = ip2asn.FromTable(entries)
	} else {
		svcIPASN = ip2asn.FromTable(nil) // netixlan port records only
	}
	tf, err := os.Open(tracesFile)
	if err != nil {
		return err
	}
	defer tf.Close()
	paths, err := trace.Parse(tf)
	if err != nil {
		return err
	}
	fmt.Printf("offline: %d facilities, %d exchanges, %d traceroutes\n",
		len(db.Facilities), len(db.IXPs), len(paths))

	cfg := cfs.DefaultConfig()
	cfg.MaxIterations = iterations
	cfg.Workers = workers
	if engine != "" {
		cfg.Engine = engine
	}
	cfg.UseTargeted = false
	cfg.UseAliasResolution = false
	cfg.UseRemoteDetection = false
	res := cfs.New(cfg, db, svcIPASN, nil, nil, nil).Run(paths)

	if verbose {
		printHistory(os.Stdout, res.History)
		fmt.Println()
	}
	fmt.Printf("interfaces observed: %d, resolved: %d (%.1f%%)\n\n",
		len(res.Interfaces), res.Resolved(), 100*res.ResolvedFraction())
	fmt.Printf("%-16s %-12s %-30s %s\n", "INTERFACE", "OWNER", "FACILITY", "CANDIDATES")
	printed := 0
	for ip, ir := range res.Interfaces {
		if !ir.Resolved && !unresolved {
			continue
		}
		fac := ""
		if ir.Resolved {
			if rec, ok := db.Facilities[ir.Facility]; ok {
				fac = rec.Name
			}
		}
		fmt.Printf("%-16s %-12v %-30s %d\n", ip, ir.Owner, fac, len(ir.Candidates))
		printed++
		if limit > 0 && printed >= limit {
			break
		}
	}
	return nil
}
