// Package trace deliberately violates the noclock invariant so the
// integration test can watch cfslint fail — standalone and under
// go vet -vettool.
package trace

import "time"

// Stamp reads the wall clock in an engine package.
func Stamp() time.Time {
	return time.Now()
}
