// Package serve deliberately violates the four flow-aware serving
// invariants — snapconsist, epochkey, goleak and hotalloc — so the
// integration test can watch cfslint report each one, standalone and
// under go vet -vettool. The stubs are self-contained: badmod is its
// own module and must not import facilitymap.
package serve

import "fmt"

// Mapping is the snapshot stub.
type Mapping struct{ epoch int }

func (m *Mapping) Epoch() int     { return m.epoch }
func (m *Mapping) Render() []byte { return nil }

// System is the facade stub.
type System struct{ cur *Mapping }

func (s *System) Current() *Mapping { return s.cur }

type cacheKey struct{ path string }

type epochCache struct{}

func (c *epochCache) get(epoch int, key cacheKey) ([]byte, bool) { return nil, false }

func use(*Mapping) {}

// DoubleLoad takes two snapshots in one request scope: an Apply
// landing between them skews the response (snapconsist).
func DoubleLoad(s *System) {
	m := s.Current()
	use(m)
	m2 := s.Current()
	use(m2)
}

// LiteralEpoch keys the cache with a fabricated epoch instead of one
// derived from Mapping.Epoch() (epochkey).
func LiteralEpoch(c *epochCache) {
	c.get(42, cacheKey{path: "/facilities"})
}

// LeakyWorker spawns a goroutine with no termination edge: no context,
// no done channel, an unconditional loop (goleak).
func LeakyWorker(ch chan int) {
	go func() {
		for {
			use(nil)
			ch <- 1
		}
	}()
}

// HotFormat allocates through fmt.Sprintf on a marked hot path
// (hotalloc).
//
//cfslint:hotpath
func HotFormat(key cacheKey) string {
	return fmt.Sprintf("hot:%s", key.path)
}
