// Package cfs deliberately violates the nomapiter invariant: an
// unsorted map-keyed emission, the search.go bug class.
package cfs

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
