// Command cfslint runs the repo's invariant suite (internal/analysis):
// deterministic map iteration, sanctioned clocks and RNG, single-source
// probe accounting, nil-safe observability, fenced facset algebra, and
// the flow-aware serving invariants (one snapshot load per request,
// epoch-keyed cache hygiene, goroutine termination edges, hotpath
// allocation budgets).
//
// It speaks two protocols:
//
//	cfslint [-json] [packages]  standalone: load via `go list -export`,
//	                            analyze, print findings, exit 1 on any
//	                            unsuppressed one. Defaults to ./... from
//	                            the module root. -json emits the full
//	                            report (suppressed findings included) as
//	                            [{file,line,col,analyzer,message,
//	                            suppressed}] for CI.
//
//	go vet -vettool=$(which cfslint) ./...
//	                            unit-checker mode: cmd/go invokes the
//	                            tool once per package with a JSON config
//	                            (recognised by the single *.cfg
//	                            argument), plus -V=full and -flags
//	                            handshakes. Findings print as
//	                            file:line:col: analyzer: message and the
//	                            tool exits 1, which go vet surfaces.
//
// Suppressions: //cfslint:ordered <reason> (map iteration is safe
// here), //cfslint:ignore <analyzer> <reason>, //cfslint:file-ignore
// <analyzer> <reason>. Reasons are mandatory; the directives analyzer
// flags bare or misspelled suppressions.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"facilitymap/internal/analysis"
	"facilitymap/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet handshakes, in the order cmd/go issues them.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		return printVersion()
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool-specific flags
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0])
	}
	jsonOut := false
	var patterns []string
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		patterns = append(patterns, a)
	}
	return runStandalone(patterns, jsonOut)
}

// printVersion implements -V=full: cmd/go fingerprints the tool binary
// to key the vet action cache, so the ID must change when the binary
// does — hash the executable, like unitchecker does.
func printVersion() int {
	name := "cfslint"
	sum := [sha256.Size]byte{}
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			_, _ = io.Copy(h, f)
			f.Close()
			copy(sum[:], h.Sum(nil))
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, sum)
	return 0
}

// jsonDiagnostic is the -json report schema CI consumes (validated
// with jq in the workflow): one object per finding, suppressed ones
// included so the report audits what the directives cover. The exit
// code still keys off unsuppressed findings only.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// runStandalone loads packages through the go command and analyzes
// them all in one process.
func runStandalone(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfslint:", err)
		return 2
	}
	suite := analysis.Suite()
	exit := 0
	report := []jsonDiagnostic{} // encodes as [] when clean, never null
	for _, pkg := range pkgs {
		diags, err := framework.RunAnalyzersVerbose(pkg, suite)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cfslint:", err)
			return 2
		}
		for _, d := range diags {
			if jsonOut {
				report = append(report, jsonDiagnostic{
					File:       d.Pos.Filename,
					Line:       d.Pos.Line,
					Col:        d.Pos.Column,
					Analyzer:   d.Analyzer,
					Message:    d.Message,
					Suppressed: d.Suppressed,
				})
			} else if !d.Suppressed {
				fmt.Println(d)
			}
			if !d.Suppressed {
				exit = 1
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "cfslint:", err)
			return 2
		}
	}
	return exit
}

// unitConfig is the JSON cmd/go writes for each vet unit of work —
// the same schema golang.org/x/tools' unitchecker consumes.
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package per the vettool protocol.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfslint:", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cfslint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The suite exports no facts, but cmd/go expects the .vetx file of
	// every unit to exist before it schedules dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cfslint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency unit: facts only, no diagnostics wanted
	}

	// Test variants reach us too ("pkg [pkg.test]", "pkg_test"); the
	// invariants guard shipped code, and checkFromSource drops _test.go
	// files, so a test-only unit simply has nothing to analyze.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}
	pkg, err := framework.CheckWithExports(cfg.ImportPath, cfg.Dir, goFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "cfslint:", err)
		return 2
	}
	diags, err := framework.RunAnalyzers(pkg, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "cfslint:", err)
		return 2
	}
	for _, d := range diags {
		// go vet prefixes tool stderr with the package; keep lines in
		// the file:line:col form editors and CI annotators parse.
		rel := d
		if r, err := filepath.Rel(cfg.Dir, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Fprintln(os.Stderr, rel)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
