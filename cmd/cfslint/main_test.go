package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the cfslint binary once into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cfslint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cfslint: %v\n%s", err, out)
	}
	return bin
}

// TestStandaloneFindsPlantedBugs runs the binary over the fixture
// module, which reintroduces the two bug classes the suite exists to
// catch: a wall-clock read in an engine package and an unsorted
// map-keyed emission.
func TestStandaloneFindsPlantedBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("cfslint exited 0 over the planted-bug module:\n%s", out)
	}
	text := string(out)
	for _, wantFrag := range []string{
		"noclock: time.Now",
		"nomapiter: range over map",
	} {
		if !strings.Contains(text, wantFrag) {
			t.Errorf("standalone output missing %q:\n%s", wantFrag, text)
		}
	}
}

// TestStandaloneCleanOwnRepo is the self-test: the repository this
// linter ships in must lint clean, with every real finding fixed or
// carrying a justified annotation.
func TestStandaloneCleanOwnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("cfslint found violations in its own repository:\n%s", out)
	}
}

// TestVettoolProtocol drives the binary through cmd/go's vet harness,
// exercising the -V=full/-flags handshakes and the unit-config path.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary under go vet")
	}
	bin := buildLint(t)
	abs, err := filepath.Abs(bin)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+abs, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 over the planted-bug module:\n%s", out)
	}
	text := string(out)
	for _, wantFrag := range []string{
		"noclock: time.Now",
		"nomapiter: range over map",
	} {
		if !strings.Contains(text, wantFrag) {
			t.Errorf("vettool output missing %q:\n%s", wantFrag, text)
		}
	}
}

// TestVersionHandshake checks the -V=full line cmd/go fingerprints.
func TestVersionHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[0] != "cfslint" || fields[1] != "version" {
		t.Errorf("-V=full output %q; want \"cfslint version ...\"", string(out))
	}
}
