package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint compiles the cfslint binary once into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cfslint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cfslint: %v\n%s", err, out)
	}
	return bin
}

// plantedFragments is one want-fragment per planted bug class in
// testdata/badmod: the original pair (wall clock, map iteration) plus
// one per flow-aware analyzer added by the serving-invariant suite.
var plantedFragments = []string{
	"noclock: time.Now",
	"nomapiter: range over map",
	"snapconsist: second System.Current",
	"epochkey: epoch argument of epochCache.get",
	"goleak: unbounded loop in a goroutine",
	"hotalloc: fmt.Sprintf on a hotpath",
}

// TestStandaloneFindsPlantedBugs runs the binary over the fixture
// module, which reintroduces every bug class the suite exists to
// catch — wall-clock reads, unsorted map-keyed emission, double
// snapshot loads, fabricated epoch keys, leaky goroutines and hotpath
// allocations.
func TestStandaloneFindsPlantedBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("cfslint exited 0 over the planted-bug module:\n%s", out)
	}
	text := string(out)
	for _, wantFrag := range plantedFragments {
		if !strings.Contains(text, wantFrag) {
			t.Errorf("standalone output missing %q:\n%s", wantFrag, text)
		}
	}
}

// TestJSONReport pins the -json schema CI consumes: a JSON array of
// {file,line,col,analyzer,message,suppressed} objects on stdout, exit
// code still 1 while unsuppressed findings exist.
func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.Output()
	if err == nil {
		t.Fatalf("cfslint -json exited 0 over the planted-bug module:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("cfslint -json: %v (want exit 1)\n%s", err, out)
	}
	var report []struct {
		File       string `json:"file"`
		Line       int    `json:"line"`
		Col        int    `json:"col"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out)
	}
	if len(report) == 0 {
		t.Fatal("-json report is empty over the planted-bug module")
	}
	byAnalyzer := map[string]bool{}
	for i, d := range report {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("report[%d] has empty schema fields: %+v", i, d)
		}
		if d.Suppressed {
			t.Errorf("report[%d] claims suppression; badmod carries no directives: %+v", i, d)
		}
		byAnalyzer[d.Analyzer] = true
	}
	for _, a := range []string{"noclock", "nomapiter", "snapconsist", "epochkey", "goleak", "hotalloc"} {
		if !byAnalyzer[a] {
			t.Errorf("-json report has no %s finding; analyzers seen: %v", a, byAnalyzer)
		}
	}
}

// TestJSONReportCleanRepo asserts a clean tree still yields a valid
// report — an empty array, never null — with exit 0, and that the
// repo's own suppressed findings surface with suppressed=true so the
// report audits what the directives cover.
func TestJSONReportCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("cfslint -json over its own repo: %v\n%s", err, out)
	}
	var report []struct {
		Analyzer   string `json:"analyzer"`
		Suppressed bool   `json:"suppressed"`
	}
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out)
	}
	if strings.TrimSpace(string(out)) == "null" {
		t.Fatal("-json emitted null instead of an array")
	}
	for i, d := range report {
		if !d.Suppressed {
			t.Errorf("report[%d] is unsuppressed (%s) yet the binary exited 0", i, d.Analyzer)
		}
	}
}

// TestStandaloneCleanOwnRepo is the self-test: the repository this
// linter ships in must lint clean, with every real finding fixed or
// carrying a justified annotation.
func TestStandaloneCleanOwnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("cfslint found violations in its own repository:\n%s", out)
	}
}

// TestVettoolProtocol drives the binary through cmd/go's vet harness,
// exercising the -V=full/-flags handshakes and the unit-config path.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary under go vet")
	}
	bin := buildLint(t)
	abs, err := filepath.Abs(bin)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+abs, "./...")
	cmd.Dir = "testdata/badmod"
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 over the planted-bug module:\n%s", out)
	}
	text := string(out)
	for _, wantFrag := range plantedFragments {
		if !strings.Contains(text, wantFrag) {
			t.Errorf("vettool output missing %q:\n%s", wantFrag, text)
		}
	}
}

// TestVersionHandshake checks the -V=full line cmd/go fingerprints.
func TestVersionHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the cfslint binary")
	}
	bin := buildLint(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[0] != "cfslint" || fields[1] != "version" {
		t.Errorf("-V=full output %q; want \"cfslint version ...\"", string(out))
	}
}
