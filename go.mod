module facilitymap

// Kept in lockstep with CI's setup-go version and its staticcheck pin
// (2025.1.1, the release line supporting Go 1.24); bump all three
// together.
go 1.24
