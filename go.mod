module facilitymap

go 1.22
