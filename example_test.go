package facilitymap_test

import (
	"fmt"
	"log"
	"strings"

	"facilitymap"
	"facilitymap/internal/cfs"
	"facilitymap/internal/ip2asn"
	"facilitymap/internal/netaddr"
	"facilitymap/internal/registry"
	"facilitymap/internal/trace"
)

// Example shows the minimal end-to-end flow: generate a world, run the
// Constrained Facility Search, and query the result.
func Example() {
	sys, err := facilitymap.NewSystem(facilitymap.Config{
		Profile:       "small",
		Seed:          7,
		MaxIterations: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	mapping := sys.MapInterconnections()

	resolved := 0
	for _, info := range mapping.Interfaces() {
		if info.Resolved {
			resolved++
		}
	}
	fmt.Println(resolved > 0)
	// Output: true
}

// ExampleMergeMappings demonstrates incremental map construction (§8 of
// the paper): merging two campaigns never loses resolutions.
func ExampleMergeMappings() {
	sys, err := facilitymap.NewSystem(facilitymap.Config{
		Profile:       "small",
		Seed:          7,
		MaxIterations: 15,
	})
	if err != nil {
		log.Fatal(err)
	}
	first := sys.MapInterconnections()
	second := sys.MapInterconnections()
	merged := facilitymap.MergeMappings(first, second)
	fmt.Println(merged.Result().Resolved() >= first.Result().Resolved())
	// Output: true
}

// Example_offline runs the algorithm on externally-supplied data — a
// PeeringDB-style dump, a BGP table and a traceroute transcript — with
// no simulator involved.
func Example_offline() {
	const pdb = `{
	  "fac": [{"id": 1, "name": "Telehouse North", "org_name": "Telehouse",
	           "city": "London", "country": "GB", "latitude": 51.51, "longitude": -0.005}],
	  "net": [{"asn": 64500, "name": "NetA"}, {"asn": 64501, "name": "NetB"}],
	  "ix": [{"id": 9, "name": "LON-X", "city": "London", "country": "GB"}],
	  "netfac": [{"local_asn": 64500, "fac_id": 1}, {"local_asn": 64501, "fac_id": 1}],
	  "ixfac": [{"ix_id": 9, "fac_id": 1}],
	  "netixlan": [{"asn": 64501, "ix_id": 9, "ipaddr4": "195.66.224.2"}],
	  "ixpfx": [{"ix_id": 9, "prefix": "195.66.224.0/22"}]
	}`
	const bgpTable = "20.0.0.0/16 64500\n20.1.0.0/16 64501\n"
	const transcript = `traceroute to 20.1.0.9, 30 hops max
 1  20.0.0.1  0.5 ms
 2  195.66.224.2  1.0 ms
 3  20.1.0.9  1.4 ms
`
	db, _, err := registry.FromPeeringDB(strings.NewReader(pdb))
	if err != nil {
		log.Fatal(err)
	}
	entries, err := ip2asn.ParseTable(strings.NewReader(bgpTable))
	if err != nil {
		log.Fatal(err)
	}
	paths, err := trace.Parse(strings.NewReader(transcript))
	if err != nil {
		log.Fatal(err)
	}
	cfg := cfs.DefaultConfig()
	cfg.UseTargeted = false
	cfg.UseAliasResolution = false
	cfg.UseRemoteDetection = false
	p, err := cfs.New(cfg, db, ip2asn.FromTable(entries), nil, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res := p.Run(paths)

	ir := res.Interfaces[netaddr.MustParseIP("195.66.224.2")]
	fmt.Println(ir.Resolved, db.Facilities[ir.Facility].Name)
	// Output: true Telehouse North
}
