package facilitymap

import (
	"bytes"
	"strings"
	"testing"

	"facilitymap/internal/cfs"
	"facilitymap/internal/delta"
	"facilitymap/internal/netaddr"
	"facilitymap/internal/world"
)

// TestSystemApplyPublishesEpochs drives the snapshot lifecycle through
// the facade: epoch 0 from the initial convergence, monotonically
// numbered snapshots from Apply, Current always pointing at the latest,
// and earlier snapshots staying intact.
func TestSystemApplyPublishesEpochs(t *testing.T) {
	sys := smallSystem(t)
	if sys.Current() != nil {
		t.Fatal("Current non-nil before any run")
	}
	if _, err := sys.Apply(nil); err == nil {
		t.Fatal("Apply before MapInterconnections accepted")
	}

	m0 := sys.MapInterconnections()
	if m0.Epoch() != 0 {
		t.Fatalf("initial epoch %d, want 0", m0.Epoch())
	}
	if sys.Current() != m0 {
		t.Fatal("Current does not point at the initial mapping")
	}

	full, _ := delta.Churn(sys.Env.W, 60, 5)
	var log []delta.Delta
	for _, d := range full {
		if d.Kind.WorldExpressible() {
			log = append(log, d)
		}
	}
	if len(log) == 0 {
		t.Fatal("churn produced no facility deltas")
	}

	resolvedBefore := m0.Result().Resolved()
	m1, err := sys.Apply(log)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if m1.Epoch() != 1 {
		t.Fatalf("epoch after Apply %d, want 1", m1.Epoch())
	}
	if sys.Current() != m1 {
		t.Fatal("Current not updated by Apply")
	}
	// The epoch-0 snapshot is immutable: same object, same contents.
	if m0.Epoch() != 0 || m0.Result().Resolved() != resolvedBefore {
		t.Fatal("Apply disturbed the previous snapshot")
	}
	// The new snapshot still answers facade queries.
	infos := m1.Interfaces()
	if len(infos) == 0 {
		t.Fatal("post-delta mapping empty")
	}
	if _, ok := m1.Lookup(infos[0].IP); !ok {
		t.Fatal("lookup on post-delta mapping failed")
	}
}

// TestWriteJSONStableOrdering pins the wire format: two encodings of
// one mapping are byte-identical, and the summary keys appear in their
// documented order so downstream diffs stay clean.
func TestWriteJSONStableOrdering(t *testing.T) {
	sys := smallSystem(t)
	m := sys.MapInterconnections()

	var a, b bytes.Buffer
	if err := m.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same mapping differ")
	}

	out := a.String()
	keys := []string{
		`"summary"`, `"epoch"`, `"interfaces"`, `"resolved"`, `"resolved_fraction"`,
		`"iterations"`, `"routers"`, `"multi_role_routers"`, `"multi_ixp_routers"`,
		`"far_end_placements"`, `"proximity_placements"`,
	}
	pos := -1
	for _, k := range keys {
		at := strings.Index(out, k)
		if at < 0 {
			t.Fatalf("key %s missing from output", k)
		}
		if at < pos {
			t.Fatalf("key %s out of order", k)
		}
		pos = at
	}
}

// TestMergeMappingsConflicts merges runs whose overlapping interfaces
// hold mutually exclusive inferences: the earliest run's answer wins
// and the disagreement is counted, never silently intersected away.
func TestMergeMappingsConflicts(t *testing.T) {
	sys := smallSystem(t)
	ip := netaddr.IP(0x0a000001)
	mk := func(fac world.FacilityID) *Mapping {
		return &Mapping{sys: sys, res: &cfs.Result{
			Interfaces: map[netaddr.IP]*cfs.InterfaceResult{
				ip: {
					IP: ip, Owner: 64500, Resolved: true,
					Facility: fac, Candidates: []world.FacilityID{fac},
				},
			},
		}}
	}
	merged := MergeMappings(mk(1), mk(2))
	if merged == nil {
		t.Fatal("merge returned nil")
	}
	res := merged.Result()
	if res.MergeConflicts != 1 {
		t.Fatalf("MergeConflicts = %d, want 1", res.MergeConflicts)
	}
	ir := res.Interfaces[ip]
	if ir == nil || !ir.Resolved || ir.Facility != 1 {
		t.Fatalf("conflict did not keep the earliest answer: %+v", ir)
	}

	// A genuine overlap still intersects: {1,2} x {2,3} -> {2}.
	mkSet := func(c ...world.FacilityID) *Mapping {
		return &Mapping{sys: sys, res: &cfs.Result{
			Interfaces: map[netaddr.IP]*cfs.InterfaceResult{
				ip: {IP: ip, Owner: 64500, Candidates: c},
			},
		}}
	}
	ok := MergeMappings(mkSet(1, 2), mkSet(2, 3)).Result()
	if ok.MergeConflicts != 0 {
		t.Fatalf("clean overlap counted as conflict")
	}
	if ir := ok.Interfaces[ip]; !ir.Resolved || ir.Facility != 2 {
		t.Fatalf("overlap did not collapse to the shared facility: %+v", ir)
	}
}
