package facilitymap

import (
	"bytes"
	"encoding/json"
	"testing"

	"facilitymap/internal/delta"
	"facilitymap/internal/world"
)

// TestSeedZeroHonored pins the Config.Seed contract: every value,
// including 0, is used verbatim — NewSystem never substitutes the
// profile's built-in seed. Before the fix, Seed==0 silently fell back
// to the profile default, making 0 the one seed that could not be
// asked for.
func TestSeedZeroHonored(t *testing.T) {
	sys, err := NewSystem(Config{Profile: "small", Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	wcfg := world.Small()
	wcfg.Seed = 0
	want := world.Generate(wcfg)

	var got, ref bytes.Buffer
	if err := sys.Env.W.EncodeJSON(&got); err != nil {
		t.Fatal(err)
	}
	if err := want.EncodeJSON(&ref); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), ref.Bytes()) {
		t.Fatal("Seed 0 did not generate the seed-0 world")
	}

	// And it is NOT the profile-default world the old fallback built.
	var def bytes.Buffer
	if err := world.Generate(world.Small()).EncodeJSON(&def); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got.Bytes(), def.Bytes()) {
		t.Fatal("Seed 0 still falls back to the profile default seed")
	}
}

// TestWriteJSONEpoch pins the epoch field of the JSON dump: a
// post-Apply snapshot's dump carries its own epoch, so tooling
// replaying a delta log can tell which epoch a dump describes.
func TestWriteJSONEpoch(t *testing.T) {
	sys := smallSystem(t)
	m0 := sys.MapInterconnections()

	decodeEpoch := func(m *Mapping) int {
		t.Helper()
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Summary SnapshotSummary `json:"summary"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		return doc.Summary.Epoch
	}
	if got := decodeEpoch(m0); got != 0 {
		t.Fatalf("initial dump epoch %d, want 0", got)
	}

	m1, err := sys.Apply(facilityChurn(t, sys, 40))
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeEpoch(m1); got != 1 {
		t.Fatalf("post-Apply dump epoch %d, want 1", got)
	}
	// The earlier snapshot's dump is unchanged.
	if got := decodeEpoch(m0); got != 0 {
		t.Fatalf("epoch-0 dump now reports epoch %d", got)
	}
}

// TestMergeMappingsEpoch merges post-Apply snapshots: the merged epoch
// is the max of the inputs, not a silent reset to 0.
func TestMergeMappingsEpoch(t *testing.T) {
	sys := smallSystem(t)
	m0 := sys.MapInterconnections()
	m1, err := sys.Apply(facilityChurn(t, sys, 40))
	if err != nil {
		t.Fatal(err)
	}
	if m0.Epoch() != 0 || m1.Epoch() != 1 {
		t.Fatalf("setup epochs %d/%d, want 0/1", m0.Epoch(), m1.Epoch())
	}
	for _, order := range [][]*Mapping{{m0, m1}, {m1, m0}} {
		merged := MergeMappings(order...)
		if merged == nil {
			t.Fatal("merge returned nil")
		}
		if got := merged.Epoch(); got != 1 {
			t.Fatalf("merged epoch %d, want max(0,1)=1", got)
		}
	}
	if got := MergeMappings(m0, m0).Epoch(); got != 0 {
		t.Fatalf("merge of two epoch-0 snapshots has epoch %d, want 0", got)
	}
}

// TestFacadeEdgeCases pins the facade's boundary behavior: Current
// before the first convergence, Lookup on unparsable and unknown
// addresses, and Apply with an empty delta batch.
func TestFacadeEdgeCases(t *testing.T) {
	sys := smallSystem(t)
	if sys.Current() != nil {
		t.Fatal("Current non-nil before MapInterconnections")
	}
	m := sys.MapInterconnections()

	if _, ok := m.Lookup("definitely-not-an-ip"); ok {
		t.Error("Lookup accepted an unparsable address")
	}
	if _, ok := m.Lookup("203.0.113.254"); ok {
		t.Error("Lookup resolved an address outside the observation pool")
	}

	// An empty batch is a heartbeat: it publishes a fresh epoch whose
	// mapping is identical to the previous one. Pinned so callers can
	// rely on Apply always advancing the epoch counter.
	resolved := m.Result().Resolved()
	m1, err := sys.Apply(nil)
	if err != nil {
		t.Fatalf("Apply(empty): %v", err)
	}
	if m1.Epoch() != m.Epoch()+1 {
		t.Fatalf("empty Apply published epoch %d, want %d", m1.Epoch(), m.Epoch()+1)
	}
	if m1.Result().Resolved() != resolved {
		t.Fatalf("empty Apply changed the mapping: resolved %d -> %d",
			resolved, m1.Result().Resolved())
	}
	if sys.Current() != m1 {
		t.Fatal("empty Apply did not update Current")
	}
}

// TestInterconnections exercises the AS-pair index: every link of the
// snapshot is findable under its (normalized) AS pair, the query is
// order-insensitive, and unknown pairs return nothing.
func TestInterconnections(t *testing.T) {
	sys := smallSystem(t)
	m := sys.MapInterconnections()
	res := m.Result()
	if len(res.Links) == 0 {
		t.Fatal("no links in the snapshot")
	}
	if m.ASPairs() == 0 {
		t.Fatal("AS-pair index is empty")
	}

	checked := 0
	for _, l := range res.Links {
		far := m.farASOf(l)
		if l.NearAS == 0 || far == 0 || far == l.NearAS {
			continue
		}
		got := m.Interconnections(int(l.NearAS), int(far))
		if len(got) == 0 {
			t.Fatalf("pair (%v, %v) has a link but no index entry", l.NearAS, far)
		}
		found := false
		for _, ixn := range got {
			if ixn.NearIP == l.Near.String() && ixn.Type == l.Type.String() {
				found = true
				if ixn.NearAS != int(l.NearAS) || ixn.FarAS != int(far) {
					t.Fatalf("pair fields wrong: %+v", ixn)
				}
				if l.Public && ixn.IXP == "" {
					t.Fatalf("public link lacks IXP name: %+v", ixn)
				}
				if ixn.Resolved && ixn.Facility == "" {
					t.Fatalf("resolved link lacks facility name: %+v", ixn)
				}
			}
		}
		if !found {
			t.Fatalf("link %v not listed under its pair", l.Near)
		}
		// Order-insensitive.
		rev := m.Interconnections(int(far), int(l.NearAS))
		if len(rev) != len(got) {
			t.Fatalf("pair query not symmetric: %d vs %d", len(got), len(rev))
		}
		checked++
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no link with two known ASes")
	}
	if got := m.Interconnections(1, 2); len(got) != 0 {
		t.Fatalf("bogus pair returned %d interconnections", len(got))
	}
}

// facilityChurn draws a churn log against the system's world and keeps
// only the registry-expressible facility deltas (the surgical path).
func facilityChurn(t *testing.T, sys *System, n int) []delta.Delta {
	t.Helper()
	full, _ := delta.Churn(sys.Env.W, n, 5)
	var log []delta.Delta
	for _, d := range full {
		if d.Kind.WorldExpressible() {
			log = append(log, d)
		}
	}
	if len(log) == 0 {
		t.Fatal("churn produced no facility deltas")
	}
	return log
}
